// Scalar kernel table — the fallback floor and the bit-exactness oracle
// every SIMD level is tested against. The arithmetic is shared with the
// per-block reference paths (jpeg::fdct_aan / jpeg::quantize_coeff /
// image::rgb_to_ycbcr / image::clamp_u8), so "pipeline at level scalar"
// and "per-block reference" remain byte-identical by construction.
#include <cmath>
#include <cstdint>

#include "image/color.hpp"
#include "image/image.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/quant.hpp"
#include "simd/kernels.hpp"
#include "simd/kernels_common.hpp"

namespace dnj::simd {

namespace {

using detail::kBlockDim;
using detail::kBlockSize;

void quantize_zigzag_batch_scalar(const float* coeffs, std::size_t count,
                                  const float* recip, std::int16_t* out) {
  for (std::size_t b = 0; b < count; ++b) {
    const float* c = coeffs + b * kBlockSize;
    std::int16_t* zz = out + b * kBlockSize;
    // Quantize in natural order first, then permute the int16 results into
    // scan order. Per coefficient this is the exact arithmetic of
    // quantize_coeff, so the output matches the per-block quantize() path
    // bit for bit.
    std::int16_t natural[kBlockSize];
    for (int k = 0; k < kBlockSize; ++k) natural[k] = jpeg::quantize_coeff(c[k], recip[k]);
    detail::zigzag_permute_i16(natural, zz);
  }
}

void dequantize_batch_scalar(const std::int16_t* quantized, std::size_t count,
                             const float* steps, float* coeffs) {
  for (std::size_t b = 0; b < count; ++b) {
    const std::int16_t* q = quantized + b * kBlockSize;
    float* c = coeffs + b * kBlockSize;
    for (int k = 0; k < kBlockSize; ++k) c[k] = static_cast<float>(q[k]) * steps[k];
  }
}

void tile_f32_scalar(const float* src, int w, int h, int grid_bx, int grid_by,
                     float* dst, float bias) {
  // Blocks fully inside the plane take the fast row-copy path; blocks that
  // touch the right/bottom edge replicate the last row/column.
  const int full_bx = w / kBlockDim;  // blocks with all 8 columns in-plane
  const int full_by = h / kBlockDim;
  for (int by = 0; by < grid_by; ++by) {
    for (int bx = 0; bx < grid_bx; ++bx) {
      float* blk = dst + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      if (bx < full_bx && by < full_by) {
        const float* row = src + static_cast<std::size_t>(by) * kBlockDim * w +
                           static_cast<std::size_t>(bx) * kBlockDim;
        for (int y = 0; y < kBlockDim; ++y, row += w, blk += kBlockDim)
          for (int x = 0; x < kBlockDim; ++x) blk[x] = row[x] + bias;
      } else {
        detail::tile_edge_block_f32(src, w, h, bx, by, blk, bias);
      }
    }
  }
}

void tile_u8_scalar(const std::uint8_t* src, int w, int h, int channels, int grid_bx,
                    int grid_by, float* dst, float bias) {
  const std::size_t row_stride = static_cast<std::size_t>(w) * channels;
  const int full_bx = w / kBlockDim;
  const int full_by = h / kBlockDim;
  for (int by = 0; by < grid_by; ++by) {
    for (int bx = 0; bx < grid_bx; ++bx) {
      float* blk = dst + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      if (bx < full_bx && by < full_by) {
        const std::uint8_t* row = src +
                                  static_cast<std::size_t>(by) * kBlockDim * row_stride +
                                  static_cast<std::size_t>(bx) * kBlockDim * channels;
        for (int y = 0; y < kBlockDim; ++y, row += row_stride, blk += kBlockDim)
          for (int x = 0; x < kBlockDim; ++x)
            blk[x] = static_cast<float>(row[static_cast<std::size_t>(x) * channels]) +
                     bias;
      } else {
        detail::tile_edge_block_u8(src, w, h, channels, bx, by, blk, bias);
      }
    }
  }
}

void untile_f32_scalar(const float* src, int grid_bx, int grid_by, float* plane, int w,
                       int h, float bias) {
  (void)grid_by;  // grid height is implied by h; kept for signature symmetry
  for (int by = 0; by * kBlockDim < h; ++by) {
    const int ny = std::min(kBlockDim, h - by * kBlockDim);
    for (int bx = 0; bx * kBlockDim < w; ++bx) {
      const int nx = std::min(kBlockDim, w - bx * kBlockDim);
      const float* blk = src + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      for (int y = 0; y < ny; ++y) {
        float* row = plane + static_cast<std::size_t>(by * kBlockDim + y) * w +
                     static_cast<std::size_t>(bx) * kBlockDim;
        for (int x = 0; x < nx; ++x) row[x] = blk[y * kBlockDim + x] + bias;
      }
    }
  }
}

void rgb_to_ycbcr_scalar(const std::uint8_t* rgb, std::size_t n, float* y, float* cb,
                         float* cr) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto ycc = image::rgb_to_ycbcr(rgb[i * 3], rgb[i * 3 + 1], rgb[i * 3 + 2]);
    y[i] = ycc[0];
    cb[i] = ycc[1];
    cr[i] = ycc[2];
  }
}

void ycbcr_to_rgb_row_scalar(const float* y, const float* cb, const float* cr, int n,
                             std::uint8_t* rgb) {
  for (int i = 0; i < n; ++i) {
    const auto px = image::ycbcr_to_rgb(y[i], cb[i], cr[i]);
    rgb[i * 3] = image::clamp_u8(px[0]);
    rgb[i * 3 + 1] = image::clamp_u8(px[1]);
    rgb[i * 3 + 2] = image::clamp_u8(px[2]);
  }
}

void f32_to_u8_row_scalar(const float* src, int n, std::uint8_t* dst) {
  for (int i = 0; i < n; ++i) dst[i] = image::clamp_u8(src[i]);
}

std::uint64_t sum_sq_diff_u8_scalar(const std::uint8_t* a, const std::uint8_t* b,
                                    std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    sum += static_cast<std::uint64_t>(d * d);
  }
  return sum;
}

void quant_error_block_scalar(const float* block, const double* steps, double* sq) {
  for (int k = 0; k < kBlockSize; ++k) {
    const double q = steps[k];
    const double c = block[k];
    const double rec = std::nearbyint(c / q) * q;
    sq[k] = (c - rec) * (c - rec);
  }
}

// C[M x N] += A[M x K] * B[K x N]; row-major, ikj order for locality.
void gemm_acc_scalar(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[M x N] += A^T * B with A stored [K x M] (k-major).
void gemm_at_acc_scalar(const float* a, const float* b, float* c, int m, int k,
                        int n) {
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::size_t>(kk) * m;
    const float* brow = b + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

std::uint64_t nonzero_mask_i16_64_scalar(const std::int16_t* v) {
  std::uint64_t mask = 0;
  for (int k = 0; k < kBlockSize; ++k)
    if (v[k] != 0) mask |= 1ull << k;
  return mask;
}

std::size_t stuff_bytes_scalar(const std::uint8_t* src, std::size_t n,
                               std::uint8_t* dst) {
  std::size_t o = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = src[i];
    dst[o++] = b;
    if (b == 0xFF) dst[o++] = 0x00;
  }
  return o;
}

}  // namespace

const KernelTable* scalar_kernels() {
  static const KernelTable table = {
      &jpeg::fdct_batch_scalar,
      &jpeg::idct_batch_scalar,
      &quantize_zigzag_batch_scalar,
      &dequantize_batch_scalar,
      &tile_f32_scalar,
      &tile_u8_scalar,
      &untile_f32_scalar,
      &rgb_to_ycbcr_scalar,
      &ycbcr_to_rgb_row_scalar,
      &f32_to_u8_row_scalar,
      &sum_sq_diff_u8_scalar,
      &quant_error_block_scalar,
      &gemm_acc_scalar,
      &gemm_at_acc_scalar,
      &nonzero_mask_i16_64_scalar,
      &stuff_bytes_scalar,
  };
  return &table;
}

}  // namespace dnj::simd
