#include "jpeg/decoder.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "image/blocks.hpp"
#include "image/color.hpp"
#include "image/resample.hpp"
#include "jpeg/bitio.hpp"
#include "jpeg/block_coder.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/huffman.hpp"
#include "jpeg/markers.hpp"
#include "jpeg/zigzag.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace dnj::jpeg {

namespace {

using image::kBlockDim;
using image::PlaneF;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("jpeg::decode: " + what);
}

struct FrameComponent {
  int id = 0;
  int h = 1, v = 1;
  int tq = 0;
  int dc_table = 0;
  int ac_table = 0;
  int blocks_x = 0, blocks_y = 0;  // padded grid within the MCU lattice
  std::int16_t* coeffs = nullptr;  // natural-order blocks in the context arena
};

class Parser {
 public:
  Parser(const std::uint8_t* data, std::size_t size, pipeline::CodecContext& ctx)
      : ctx_(ctx), data_(data), size_(size) {}

  JpegInfo info;
  std::vector<FrameComponent> comps;
  // Decoder tables live in the context cache; a warm context decoding a
  // same-table stream skips the per-image table derivation and LUT fill.
  const HuffmanDecoder* dc_tables[4] = {};
  const HuffmanDecoder* ac_tables[4] = {};
  int mcus_x = 0, mcus_y = 0;
  std::size_t scan_start = 0;  // offset of entropy-coded data

  /// Parses markers through SOS. Returns false if the stream had no SOS.
  bool parse_headers() {
    if (read_u8() != 0xFF || read_u8() != kSOI) fail("missing SOI");
    for (;;) {
      const std::uint8_t marker = next_marker();
      switch (marker) {
        case kEOI:
          return false;
        case kDQT:
          read_dqt();
          break;
        case kDHT:
          read_dht();
          break;
        case kSOF0:
        case kSOF1:
          read_sof();
          break;
        case kDRI:
          read_dri();
          break;
        case kCOM:
          read_com();
          break;
        case kSOS:
          read_sos();
          scan_start = pos_;
          return true;
        default:
          if (is_app(marker)) {
            skip_segment();
          } else if (marker >= 0xC2 && marker <= 0xCF && marker != kDHT) {
            fail("unsupported SOF type (only baseline sequential is implemented)");
          } else {
            skip_segment();
          }
      }
    }
  }

  void decode_scan(int num_threads) {
    // Size the per-component coefficient arenas now (parse_info never gets
    // here, so header-only parses leave the context untouched). No
    // zero-fill needed: the MCU walk visits every grid block exactly once
    // and decode_block clears each block before writing it.
    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      pipeline::QuantPlane& plane = ctx_.decode_coeffs[ci];
      plane.reshape(comps[ci].blocks_x, comps[ci].blocks_y);
      comps[ci].coeffs = plane.data();
      if (!dc_tables[comps[ci].dc_table] || !ac_tables[comps[ci].ac_table])
        fail("scan references undefined Huffman table");
    }
    const int total_mcus = mcus_x * mcus_y;
    if (info.restart_interval > 0 && total_mcus > info.restart_interval) {
      decode_scan_segments(num_threads);
      return;
    }
    // No restart marker can legally appear: one straight-line pass.
    BitReader br(data_ + scan_start, size_ - scan_start);
    decode_mcu_range(br, 0, total_mcus);
  }

  /// Decodes MCUs [m0, m1) from `br`, DC predictors starting at zero —
  /// exactly the state at the start of a scan or after a restart marker.
  void decode_mcu_range(BitReader& br, int m0, int m1) {
    std::array<int, pipeline::kMaxComponents> dc_pred{};
    for (int mcu_index = m0; mcu_index < m1; ++mcu_index) {
      const int my = mcu_index / mcus_x;
      const int mx = mcu_index % mcus_x;
      for (std::size_t ci = 0; ci < comps.size(); ++ci) {
        const FrameComponent& c = comps[ci];
        for (int by = 0; by < c.v; ++by) {
          for (int bx = 0; bx < c.h; ++bx) {
            const int gx = mx * c.h + bx;
            const int gy = my * c.v + by;
            std::int16_t* blk =
                c.coeffs + (static_cast<std::size_t>(gy) * c.blocks_x + gx) * 64;
            if (!decode_block(br, blk, dc_pred[ci], *dc_tables[c.dc_table],
                              *ac_tables[c.ac_table]))
              fail("corrupt entropy-coded data");
          }
        }
      }
    }
  }

  /// Restart-interval path: pre-scan the byte stream for the RST markers
  /// (cheap — stuffing rules make them unambiguous without decoding), then
  /// decode the segments independently on parallel_for. Every segment
  /// resets its DC predictors exactly as the serial walk did after
  /// take_marker, and segments write disjoint block ranges of the shared
  /// coefficient planes, so the output is bit-identical at every thread
  /// count. Thrown errors (corrupt segments) propagate via parallel_for's
  /// first-exception rule.
  void decode_scan_segments(int num_threads) {
    const std::uint8_t* scan = data_ + scan_start;
    const std::size_t scan_size = size_ - scan_start;
    const int ri = info.restart_interval;
    const int total_mcus = mcus_x * mcus_y;
    const int num_segments = (total_mcus + ri - 1) / ri;

    struct Segment {
      std::size_t begin, end;  // byte range within the scan, markers excluded
    };
    std::vector<Segment> segments;
    segments.reserve(static_cast<std::size_t>(num_segments));
    std::size_t seg_begin = 0;
    std::size_t p = 0;
    while (static_cast<int>(segments.size()) + 1 < num_segments) {
      if (p + 1 >= scan_size) fail("missing restart marker");
      if (scan[p] != 0xFF) {
        ++p;
        continue;
      }
      const std::uint8_t next = scan[p + 1];
      if (next == 0x00) {  // stuffed data byte
        p += 2;
        continue;
      }
      if (next == 0xFF) {  // fill byte
        ++p;
        continue;
      }
      if (!is_rst(next)) fail("missing restart marker");
      if (next != kRST0 + static_cast<int>(segments.size() % 8))
        fail("restart marker out of sequence");
      segments.push_back({seg_begin, p});
      p += 2;
      seg_begin = p;
    }
    segments.push_back({seg_begin, scan_size});

    runtime::parallel_for(
        0, segments.size(), 1,
        [&](std::size_t si) {
          const Segment& seg = segments[si];
          BitReader br(scan + seg.begin, seg.end - seg.begin);
          const int m0 = static_cast<int>(si) * ri;
          decode_mcu_range(br, m0, std::min(total_mcus, m0 + ri));
          if (si + 1 < segments.size()) {
            // The serial reader demanded a restart marker right after the
            // segment's last MCU; here the marker position is fixed by the
            // pre-scan, so undelivered payload before it (beyond the <= 7
            // pad bits of the final byte) means the segment over-ran its
            // restart interval.
            const std::size_t unread_bytes = (seg.end - seg.begin) - br.position();
            if (br.buffered_bits() + 8 * static_cast<int>(unread_bytes) > 7)
              fail("missing restart marker");
          }
        },
        num_threads);
  }

  image::Image reconstruct() {
    // Per component: batched dequantize into the float coefficient arena,
    // in-place batched IDCT, then untile (+128 level unshift) into the
    // component's plane arena. Identical arithmetic to the seed's per-block
    // idct(dequantize(...)) loop, with zero per-block allocations.
    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      const FrameComponent& c = comps[ci];
      if (!info.quant_tables[c.tq]) fail("component references undefined DQT");
      const QuantTable& qt = *info.quant_tables[c.tq];
      pipeline::CoeffPlane& fp = ctx_.decode_fp;
      fp.reshape(c.blocks_x, c.blocks_y);
      dequantize_batch(c.coeffs, fp.block_count(), qt, fp.data());
      idct_batch(fp.data(), fp.block_count());
      PlaneF& plane = ctx_.decode_planes[ci];
      plane.reset(c.blocks_x * kBlockDim, c.blocks_y * kBlockDim);
      image::untile_blocks_from(fp.data(), c.blocks_x, c.blocks_y, plane, 128.0f);
    }

    if (comps.size() == 1) {
      image::Image img(info.width, info.height, 1);
      image::from_plane(ctx_.decode_planes[0], img, 0);
      return img;
    }

    // Upsample subsampled chroma to luma resolution.
    const PlaneF& luma = ctx_.decode_planes[0];
    auto upsample_if_needed = [&](PlaneF& p, const FrameComponent& c) {
      if (c.h == info.max_h && c.v == info.max_v) return;
      if (2 * c.h == info.max_h && 2 * c.v == info.max_v) {
        // The subsampled plane may be padded past ceil(dim/2); crop-aware
        // upsample to the luma padded size via bilinear on the useful area.
        const int need_w = (info.width + 1) / 2;
        const int need_h = (info.height + 1) / 2;
        PlaneF cropped(need_w, need_h);
        for (int y = 0; y < need_h; ++y)
          for (int x = 0; x < need_w; ++x) cropped.at(x, y) = p.at(x, y);
        PlaneF up = image::upsample_2x2(cropped, info.width, info.height);
        // Re-pad to luma plane size for uniform indexing downstream.
        PlaneF padded(luma.width(), luma.height(), 128.0f);
        for (int y = 0; y < info.height; ++y)
          for (int x = 0; x < info.width; ++x) padded.at(x, y) = up.at(x, y);
        p = std::move(padded);
        return;
      }
      fail("unsupported sampling factor combination");
    };
    upsample_if_needed(ctx_.decode_planes[1], comps[1]);
    upsample_if_needed(ctx_.decode_planes[2], comps[2]);
    return image::to_rgb(luma, ctx_.decode_planes[1], ctx_.decode_planes[2], info.width,
                         info.height);
  }

 private:
  std::uint8_t read_u8() {
    if (pos_ >= size_) fail("unexpected end of stream");
    return data_[pos_++];
  }

  std::uint16_t read_u16() {
    const std::uint16_t hi = read_u8();
    return static_cast<std::uint16_t>((hi << 8) | read_u8());
  }

  std::uint8_t next_marker() {
    // Skip fill bytes and any stray non-FF bytes between segments.
    while (pos_ < size_) {
      std::uint8_t b = read_u8();
      if (b != 0xFF) continue;
      while (pos_ < size_ && data_[pos_] == 0xFF) ++pos_;
      if (pos_ >= size_) break;
      b = read_u8();
      if (b != 0x00) return b;
    }
    fail("ran out of markers");
  }

  void skip_segment() {
    const std::uint16_t len = read_u16();
    if (len < 2) fail("bad segment length");
    if (pos_ + len - 2 > size_) fail("segment exceeds stream");
    pos_ += len - 2u;
  }

  void read_com() {
    const std::uint16_t len = read_u16();
    if (len < 2 || pos_ + len - 2 > size_) fail("bad COM segment");
    info.comment.assign(reinterpret_cast<const char*>(data_ + pos_), len - 2u);
    pos_ += len - 2u;
  }

  void read_dqt() {
    const std::uint16_t len = read_u16();
    std::size_t end = pos_ + len - 2u;
    if (len < 2 || end > size_) fail("bad DQT segment");
    while (pos_ < end) {
      const std::uint8_t pq_tq = read_u8();
      const int pq = pq_tq >> 4;
      const int tq = pq_tq & 0x0F;
      if (pq > 1 || tq > 3) fail("bad DQT precision/index");
      std::array<std::uint16_t, 64> natural{};
      for (int k = 0; k < 64; ++k) {
        const std::uint16_t q = pq ? read_u16() : read_u8();
        natural[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])] = q;
      }
      info.quant_tables[tq] = QuantTable(natural);
    }
  }

  void read_dht() {
    const std::uint16_t len = read_u16();
    std::size_t end = pos_ + len - 2u;
    if (len < 2 || end > size_) fail("bad DHT segment");
    while (pos_ < end) {
      const std::uint8_t tc_th = read_u8();
      const int tc = tc_th >> 4;
      const int th = tc_th & 0x0F;
      if (tc > 1 || th > 3) fail("bad DHT class/index");
      HuffmanSpec spec;
      int total = 0;
      for (int l = 1; l <= 16; ++l) {
        spec.counts[static_cast<std::size_t>(l)] = read_u8();
        total += spec.counts[static_cast<std::size_t>(l)];
      }
      if (total > 256) fail("bad DHT symbol count");
      spec.symbols.reserve(static_cast<std::size_t>(total));
      for (int i = 0; i < total; ++i) spec.symbols.push_back(read_u8());
      try {
        const HuffmanDecoder& dec = ctx_.decoder_for(spec);
        (tc == 0 ? dc_tables : ac_tables)[th] = &dec;
      } catch (const std::invalid_argument& e) {
        fail(std::string("invalid Huffman table: ") + e.what());
      }
    }
  }

  void read_sof() {
    const std::uint16_t len = read_u16();
    if (len < 8) fail("bad SOF segment");
    const int precision = read_u8();
    if (precision != 8) fail("only 8-bit precision supported");
    info.height = read_u16();
    info.width = read_u16();
    if (info.width == 0 || info.height == 0) fail("zero frame dimension");
    info.components = read_u8();
    if (info.components != 1 && info.components != 3)
      fail("only 1- or 3-component frames supported");
    comps.clear();
    for (int i = 0; i < info.components; ++i) {
      FrameComponent c;
      c.id = read_u8();
      const std::uint8_t hv = read_u8();
      c.h = hv >> 4;
      c.v = hv & 0x0F;
      c.tq = read_u8();
      if (c.h < 1 || c.h > 2 || c.v < 1 || c.v > 2 || c.tq > 3)
        fail("unsupported component parameters");
      comps.push_back(c);
    }
    info.max_h = 1;
    info.max_v = 1;
    for (const FrameComponent& c : comps) {
      info.max_h = std::max(info.max_h, c.h);
      info.max_v = std::max(info.max_v, c.v);
    }
    mcus_x = (info.width + info.max_h * kBlockDim - 1) / (info.max_h * kBlockDim);
    mcus_y = (info.height + info.max_v * kBlockDim - 1) / (info.max_v * kBlockDim);
    for (FrameComponent& c : comps) {
      c.blocks_x = mcus_x * c.h;
      c.blocks_y = mcus_y * c.v;
    }
  }

  void read_dri() {
    const std::uint16_t len = read_u16();
    if (len != 4) fail("bad DRI segment");
    info.restart_interval = read_u16();
  }

  void read_sos() {
    if (comps.empty()) fail("SOS before SOF");
    const std::uint16_t len = read_u16();
    const int ns = read_u8();
    if (ns != static_cast<int>(comps.size()))
      fail("scan component count differs from frame (progressive not supported)");
    if (len != 6 + 2 * ns) fail("bad SOS length");
    for (int i = 0; i < ns; ++i) {
      const int cs = read_u8();
      const std::uint8_t td_ta = read_u8();
      auto it = std::find_if(comps.begin(), comps.end(),
                             [cs](const FrameComponent& c) { return c.id == cs; });
      if (it == comps.end()) fail("scan references unknown component");
      it->dc_table = td_ta >> 4;
      it->ac_table = td_ta & 0x0F;
      if (it->dc_table > 3 || it->ac_table > 3) fail("bad scan table index");
    }
    const int ss = read_u8();
    const int se = read_u8();
    const int ah_al = read_u8();
    if (ss != 0 || se != 63 || ah_al != 0)
      fail("only sequential baseline scans supported");
  }

  pipeline::CodecContext& ctx_;
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

image::Image decode(ByteSpan bytes, pipeline::CodecContext& ctx, int num_threads) {
  Parser parser(bytes.data, bytes.size, ctx);
  {
    obs::Span span(obs::Stage::kDecodeEntropy, bytes.size);
    if (!parser.parse_headers()) fail("stream contains no scan");
    parser.decode_scan(num_threads);
  }
  obs::Span span(obs::Stage::kDecodePixels);
  return parser.reconstruct();
}

image::Image decode(ByteSpan bytes) {
  return decode(bytes, pipeline::thread_codec_context());
}

JpegInfo decode_coefficients(ByteSpan bytes, pipeline::CodecContext& ctx,
                             int num_threads) {
  Parser parser(bytes.data, bytes.size, ctx);
  if (!parser.parse_headers()) fail("stream contains no scan");
  parser.decode_scan(num_threads);
  return parser.info;
}

JpegInfo parse_info(ByteSpan bytes) {
  // Header-only parse: never touches the context arenas.
  Parser parser(bytes.data, bytes.size, pipeline::thread_codec_context());
  parser.parse_headers();
  return parser.info;
}

std::size_t scan_byte_count(ByteSpan bytes) {
  Parser parser(bytes.data, bytes.size, pipeline::thread_codec_context());
  if (!parser.parse_headers()) fail("stream contains no scan");
  if (bytes.size < parser.scan_start + 2) fail("truncated scan");
  return bytes.size - parser.scan_start - 2;  // exclude the trailing EOI
}

}  // namespace dnj::jpeg
