#include "jpeg/encoder.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <stdexcept>

#include "image/blocks.hpp"
#include "image/color.hpp"
#include "image/resample.hpp"
#include "jpeg/bitio.hpp"
#include "jpeg/block_coder.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/huffman.hpp"
#include "jpeg/markers.hpp"
#include "jpeg/zigzag.hpp"
#include "obs/trace.hpp"

namespace dnj::jpeg {

namespace {

using image::BlockF;
using image::kBlockDim;
using image::kBlockSize;
using image::PlaneF;
using pipeline::CodecContext;
using pipeline::kMaxComponents;

// One frame component prepared for entropy coding. `zz` points into the
// context's QuantPlane arena: block (gx, gy) starts at
// zz[(gy * blocks_x + gx) * 64], coefficients already in zig-zag order.
struct Component {
  int id = 1;           // component identifier written to SOF0/SOS
  int h = 1, v = 1;     // sampling factors
  int tq = 0;           // quantization table index (0 = luma, 1 = chroma)
  int blocks_x = 0;     // padded block-grid width
  int blocks_y = 0;
  const std::int16_t* zz = nullptr;
};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void write_segment_header(std::vector<std::uint8_t>& out, std::uint8_t marker,
                          std::uint16_t payload_len) {
  out.push_back(0xFF);
  out.push_back(marker);
  put_u16(out, static_cast<std::uint16_t>(payload_len + 2));
}

void write_app0(std::vector<std::uint8_t>& out) {
  write_segment_header(out, kAPP0, 14);
  const char jfif[5] = {'J', 'F', 'I', 'F', '\0'};
  out.insert(out.end(), jfif, jfif + 5);
  out.push_back(1);  // version 1.01
  out.push_back(1);
  out.push_back(0);  // density units: none
  put_u16(out, 1);   // x density
  put_u16(out, 1);   // y density
  out.push_back(0);  // no thumbnail
  out.push_back(0);
}

void write_comment(std::vector<std::uint8_t>& out, const std::string& text) {
  if (text.empty()) return;
  if (text.size() > 65533) throw std::invalid_argument("encode: comment too long");
  write_segment_header(out, kCOM, static_cast<std::uint16_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

void write_dqt(std::vector<std::uint8_t>& out, const QuantTable& table, int index) {
  const bool wide = table.needs_16bit();
  write_segment_header(out, kDQT, static_cast<std::uint16_t>(1 + (wide ? 128 : 64)));
  out.push_back(static_cast<std::uint8_t>(((wide ? 1 : 0) << 4) | index));
  for (int k = 0; k < 64; ++k) {
    const std::uint16_t q = table.step(kZigzag[static_cast<std::size_t>(k)]);
    if (wide) put_u16(out, q);
    else out.push_back(static_cast<std::uint8_t>(q));
  }
}

template <typename Comp>
void write_sof0(std::vector<std::uint8_t>& out, int width, int height, const Comp* comps,
                std::size_t n_comps) {
  write_segment_header(out, kSOF0, static_cast<std::uint16_t>(6 + 3 * n_comps));
  out.push_back(8);  // sample precision
  put_u16(out, static_cast<std::uint16_t>(height));
  put_u16(out, static_cast<std::uint16_t>(width));
  out.push_back(static_cast<std::uint8_t>(n_comps));
  for (std::size_t i = 0; i < n_comps; ++i) {
    const Comp& c = comps[i];
    out.push_back(static_cast<std::uint8_t>(c.id));
    out.push_back(static_cast<std::uint8_t>((c.h << 4) | c.v));
    out.push_back(static_cast<std::uint8_t>(c.tq));
  }
}

void write_dht(std::vector<std::uint8_t>& out, const HuffmanSpec& spec, int klass, int index) {
  write_segment_header(out, kDHT,
                       static_cast<std::uint16_t>(1 + 16 + spec.symbols.size()));
  out.push_back(static_cast<std::uint8_t>((klass << 4) | index));
  for (int l = 1; l <= 16; ++l) out.push_back(spec.counts[static_cast<std::size_t>(l)]);
  out.insert(out.end(), spec.symbols.begin(), spec.symbols.end());
}

void write_dri(std::vector<std::uint8_t>& out, int interval) {
  write_segment_header(out, kDRI, 2);
  put_u16(out, static_cast<std::uint16_t>(interval));
}

template <typename Comp>
void write_sos_header(std::vector<std::uint8_t>& out, const Comp* comps,
                      std::size_t n_comps) {
  write_segment_header(out, kSOS, static_cast<std::uint16_t>(1 + 2 * n_comps + 3));
  out.push_back(static_cast<std::uint8_t>(n_comps));
  for (std::size_t i = 0; i < n_comps; ++i) {
    const Comp& c = comps[i];
    out.push_back(static_cast<std::uint8_t>(c.id));
    const int table = c.tq;  // DC and AC table index follow the quant index
    out.push_back(static_cast<std::uint8_t>((table << 4) | table));
  }
  out.push_back(0);   // spectral start
  out.push_back(63);  // spectral end
  out.push_back(0);   // successive approximation
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Walks MCUs in scan order invoking fn(component_index, grid_x, grid_y) for
// every data unit, handling the restart bookkeeping via the callbacks.
// Templated over the component record so the pipeline and reference paths
// share one traversal (same bit-exact scan order).
template <typename Comp, typename BlockFn, typename RestartFn>
void for_each_data_unit(const Comp* comps, std::size_t n_comps, int mcus_x, int mcus_y,
                        int restart_interval, BlockFn&& fn, RestartFn&& restart) {
  int mcu_index = 0;
  for (int my = 0; my < mcus_y; ++my) {
    for (int mx = 0; mx < mcus_x; ++mx) {
      if (restart_interval > 0 && mcu_index > 0 && mcu_index % restart_interval == 0)
        restart((mcu_index / restart_interval - 1) % 8);
      for (std::size_t ci = 0; ci < n_comps; ++ci) {
        const Comp& c = comps[ci];
        for (int by = 0; by < c.v; ++by) {
          for (int bx = 0; bx < c.h; ++bx) {
            fn(ci, mx * c.h + bx, my * c.v + by);
          }
        }
      }
      ++mcu_index;
    }
  }
}

void validate_config(PixelView img, const EncoderConfig& config) {
  if (img.empty()) throw std::invalid_argument("encode: empty image");
  if (img.width > 65535 || img.height > 65535)
    throw std::invalid_argument("encode: image too large for baseline JPEG");
  // Image's constructor enforces this for owned images; raw views arriving
  // through the public API are validated here.
  if (img.channels != 1 && img.channels != 3)
    throw std::invalid_argument("encode: channels must be 1 or 3");
  if (config.restart_interval < 0 || config.restart_interval > 65535)
    throw std::invalid_argument("encode: bad restart interval");
}

// Runs the batched in-place DCT over the already-tiled CoeffPlane of
// component `ci` and emits the zig-zag int16 coefficients into the
// QuantPlane arena. No allocation once the arenas are warm, and no
// per-block copies at any point.
Component finish_pipeline_component(CodecContext& ctx, int ci, int id, int h, int v,
                                    int tq, const QuantTable& table) {
  pipeline::CoeffPlane& coeff = ctx.coeff[static_cast<std::size_t>(ci)];
  pipeline::QuantPlane& quant = ctx.quant[static_cast<std::size_t>(ci)];
  {
    obs::Span span(obs::Stage::kEncodeDct, coeff.block_count());
    fdct_batch(coeff.data(), coeff.block_count());
  }
  quant.reshape(coeff.blocks_x(), coeff.blocks_y());
  {
    obs::Span span(obs::Stage::kEncodeQuant, coeff.block_count());
    quantize_zigzag_batch(coeff.data(), coeff.block_count(),
                          ctx.reciprocal_for(table, tq), quant.data());
  }
  Component comp;
  comp.id = id;
  comp.h = h;
  comp.v = v;
  comp.tq = tq;
  comp.blocks_x = coeff.blocks_x();
  comp.blocks_y = coeff.blocks_y();
  comp.zz = quant.data();
  return comp;
}

// Tiles `plane` into the component's CoeffPlane arena (level shift fused)
// and finishes it.
Component make_pipeline_component(CodecContext& ctx, int ci, const PlaneF& plane, int id,
                                  int h, int v, int tq, int grid_bx, int grid_by,
                                  const QuantTable& table) {
  {
    obs::Span span(obs::Stage::kEncodeTile,
                   static_cast<std::uint64_t>(grid_bx) * grid_by);
    ctx.coeff[static_cast<std::size_t>(ci)].tile_from(plane, grid_bx, grid_by, -128.0f);
  }
  return finish_pipeline_component(ctx, ci, id, h, v, tq, table);
}

}  // namespace

std::pair<QuantTable, QuantTable> effective_tables(const EncoderConfig& config) {
  if (config.use_custom_tables) return {config.luma_table, config.chroma_table};
  return {QuantTable::annex_k_luma().scaled(config.quality),
          QuantTable::annex_k_chroma().scaled(config.quality)};
}

namespace {

void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_table(std::vector<std::uint8_t>& out, const QuantTable& table) {
  for (std::uint16_t q : table.natural()) {
    out.push_back(static_cast<std::uint8_t>(q & 0xFF));
    out.push_back(static_cast<std::uint8_t>(q >> 8));
  }
}

}  // namespace

void append_config_bytes(const EncoderConfig& config, std::vector<std::uint8_t>& out) {
  // Fixed field order; every field is either fixed-width or length-prefixed
  // so no two distinct configs can serialize to the same bytes. When
  // use_custom_tables is false the table contents are not part of the
  // computation (quality selects the Annex K scaling), so they are
  // deliberately excluded — exactly the aliasing the digests want.
  out.reserve(out.size() + 19 + (config.use_custom_tables ? 256 : 0) +
              config.comment.size());
  append_u32(out, static_cast<std::uint32_t>(config.quality));
  append_u8(out, config.use_custom_tables ? 1 : 0);
  if (config.use_custom_tables) {
    append_table(out, config.luma_table);
    append_table(out, config.chroma_table);
  }
  append_u8(out, static_cast<std::uint8_t>(config.subsampling));
  append_u8(out, config.optimize_huffman ? 1 : 0);
  append_u32(out, static_cast<std::uint32_t>(config.restart_interval));
  append_u64(out, config.comment.size());
  out.insert(out.end(), config.comment.begin(), config.comment.end());
}

std::vector<std::uint8_t> encode(PixelView img, const EncoderConfig& config,
                                 pipeline::CodecContext& ctx) {
  validate_config(img, config);

  // Same resolution rule as effective_tables, but quality-scaled tables
  // come from the context cache instead of being re-derived per image.
  const QuantTable* luma_ptr;
  const QuantTable* chroma_ptr;
  if (config.use_custom_tables) {
    luma_ptr = &config.luma_table;
    chroma_ptr = &config.chroma_table;
  } else {
    const CodecContext::QualityTables qt = ctx.quality_tables(config.quality);
    luma_ptr = &qt.luma;
    chroma_ptr = &qt.chroma;
  }
  const QuantTable& luma_q = *luma_ptr;
  const QuantTable& chroma_q = *chroma_ptr;
  const bool color = img.channels == 3;
  const bool sub420 = color && config.subsampling == Subsampling::k420;

  // Component planes, tiled + transformed + quantized into the context
  // arenas. Grayscale skips the chroma planes entirely.
  std::array<Component, kMaxComponents> comps{};
  std::size_t n_comps = 0;
  int mcus_x = 0, mcus_y = 0;
  if (!color) {
    // Grayscale tiles straight from the 8-bit pixels — no intermediate
    // float plane at all.
    mcus_x = ceil_div(img.width, kBlockDim);
    mcus_y = ceil_div(img.height, kBlockDim);
    ctx.coeff[0].reshape(mcus_x, mcus_y);
    {
      obs::Span span(obs::Stage::kEncodeTile,
                     static_cast<std::uint64_t>(mcus_x) * mcus_y);
      image::tile_image_blocks_into(img, 0, mcus_x, mcus_y, ctx.coeff[0].data(),
                                    -128.0f);
    }
    comps[n_comps++] = finish_pipeline_component(ctx, 0, 1, 1, 1, 0, luma_q);
  } else if (!sub420) {
    image::to_ycbcr_into(img, ctx.ycc);
    mcus_x = ceil_div(img.width, kBlockDim);
    mcus_y = ceil_div(img.height, kBlockDim);
    comps[n_comps++] =
        make_pipeline_component(ctx, 0, ctx.ycc.y, 1, 1, 1, 0, mcus_x, mcus_y, luma_q);
    comps[n_comps++] =
        make_pipeline_component(ctx, 1, ctx.ycc.cb, 2, 1, 1, 1, mcus_x, mcus_y, chroma_q);
    comps[n_comps++] =
        make_pipeline_component(ctx, 2, ctx.ycc.cr, 3, 1, 1, 1, mcus_x, mcus_y, chroma_q);
  } else {
    image::to_ycbcr_into(img, ctx.ycc);
    mcus_x = ceil_div(img.width, 2 * kBlockDim);
    mcus_y = ceil_div(img.height, 2 * kBlockDim);
    image::downsample_2x2_into(ctx.ycc.cb, ctx.chroma_small[0]);
    image::downsample_2x2_into(ctx.ycc.cr, ctx.chroma_small[1]);
    comps[n_comps++] = make_pipeline_component(ctx, 0, ctx.ycc.y, 1, 2, 2, 0, 2 * mcus_x,
                                               2 * mcus_y, luma_q);
    comps[n_comps++] = make_pipeline_component(ctx, 1, ctx.chroma_small[0], 2, 1, 1, 1,
                                               mcus_x, mcus_y, chroma_q);
    comps[n_comps++] = make_pipeline_component(ctx, 2, ctx.chroma_small[1], 3, 1, 1, 1,
                                               mcus_x, mcus_y, chroma_q);
  }

  const auto zz_block = [&](std::size_t ci, int gx, int gy) {
    const Component& c = comps[ci];
    return c.zz + (static_cast<std::size_t>(gy) * c.blocks_x + gx) * kBlockSize;
  };

  // Huffman table specs: the context's cached static tables, or optimal
  // tables from a statistics pass (the only per-image table derivation left).
  const CodecContext::StaticHuffman& stat = ctx.static_huffman();
  const HuffmanSpec* dc_luma = &stat.dc_luma_spec;
  const HuffmanSpec* ac_luma = &stat.ac_luma_spec;
  const HuffmanSpec* dc_chroma = &stat.dc_chroma_spec;
  const HuffmanSpec* ac_chroma = &stat.ac_chroma_spec;
  const HuffmanEncoder* dc_enc_luma = &stat.dc_luma;
  const HuffmanEncoder* ac_enc_luma = &stat.ac_luma;
  const HuffmanEncoder* dc_enc_chroma = &stat.dc_chroma;
  const HuffmanEncoder* ac_enc_chroma = &stat.ac_chroma;

  HuffmanSpec opt_dc_luma, opt_ac_luma, opt_dc_chroma, opt_ac_chroma;
  std::optional<HuffmanEncoder> opt_enc[4];
  if (config.optimize_huffman) {
    std::array<SymbolCounts, 2> counts{};  // [0]=luma tables, [1]=chroma tables
    std::array<int, kMaxComponents> dc_pred{};
    for_each_data_unit(
        comps.data(), n_comps, mcus_x, mcus_y, config.restart_interval,
        [&](std::size_t ci, int gx, int gy) {
          count_block_symbols_zz(zz_block(ci, gx, gy), dc_pred[ci],
                                 counts[static_cast<std::size_t>(comps[ci].tq)]);
        },
        [&](int) { dc_pred.fill(0); });
    opt_dc_luma = HuffmanSpec::build_optimal(counts[0].dc);
    opt_ac_luma = HuffmanSpec::build_optimal(counts[0].ac);
    dc_luma = &opt_dc_luma;
    ac_luma = &opt_ac_luma;
    opt_enc[0].emplace(opt_dc_luma);
    opt_enc[1].emplace(opt_ac_luma);
    dc_enc_luma = &*opt_enc[0];
    ac_enc_luma = &*opt_enc[1];
    if (color) {
      opt_dc_chroma = HuffmanSpec::build_optimal(counts[1].dc);
      opt_ac_chroma = HuffmanSpec::build_optimal(counts[1].ac);
      dc_chroma = &opt_dc_chroma;
      ac_chroma = &opt_ac_chroma;
      opt_enc[2].emplace(opt_dc_chroma);
      opt_enc[3].emplace(opt_ac_chroma);
      dc_enc_chroma = &*opt_enc[2];
      ac_enc_chroma = &*opt_enc[3];
    }
  }

  // Serialize the stream. Reserving up front keeps the byte vector from
  // reallocating through the entropy pass at typical codec qualities
  // (~3 bits/pixel = 24 bytes/block); denser streams grow once or twice,
  // and the returned capacity stays close to the payload for callers that
  // keep many streams resident.
  std::size_t total_blocks = 0;
  for (std::size_t ci = 0; ci < n_comps; ++ci)
    total_blocks += static_cast<std::size_t>(comps[ci].blocks_x) * comps[ci].blocks_y;
  std::vector<std::uint8_t> out;
  out.reserve(1024 + config.comment.size() + total_blocks * 24);
  out.push_back(0xFF);
  out.push_back(kSOI);
  write_app0(out);
  write_comment(out, config.comment);
  write_dqt(out, luma_q, 0);
  if (color) write_dqt(out, chroma_q, 1);
  write_sof0(out, img.width, img.height, comps.data(), n_comps);
  write_dht(out, *dc_luma, 0, 0);
  write_dht(out, *ac_luma, 1, 0);
  if (color) {
    write_dht(out, *dc_chroma, 0, 1);
    write_dht(out, *ac_chroma, 1, 1);
  }
  if (config.restart_interval > 0) write_dri(out, config.restart_interval);
  write_sos_header(out, comps.data(), n_comps);

  obs::Span entropy_span(obs::Stage::kEncodeEntropy, total_blocks);
  BitWriter bw(out);
  std::array<int, kMaxComponents> dc_pred{};
  if (n_comps == 1 && config.restart_interval == 0) {
    // Single-component scan without restarts: MCU order is plane raster
    // order, so the whole scan is one contiguous block run — encode it
    // through the batched cursor instead of per-block calls.
    encode_blocks_zz(bw, comps[0].zz,
                     static_cast<std::size_t>(comps[0].blocks_x) * comps[0].blocks_y,
                     dc_pred[0], *dc_enc_luma, *ac_enc_luma);
  } else {
    for_each_data_unit(
        comps.data(), n_comps, mcus_x, mcus_y, config.restart_interval,
        [&](std::size_t ci, int gx, int gy) {
          const bool luma_tables = comps[ci].tq == 0;
          encode_block_zz(bw, zz_block(ci, gx, gy), dc_pred[ci],
                          luma_tables ? *dc_enc_luma : *dc_enc_chroma,
                          luma_tables ? *ac_enc_luma : *ac_enc_chroma);
        },
        [&](int rst_index) {
          bw.put_marker(static_cast<std::uint8_t>(kRST0 + rst_index));
          dc_pred.fill(0);
        });
  }
  bw.put_marker(kEOI);
  return out;
}

std::vector<std::uint8_t> encode(const image::Image& img, const EncoderConfig& config,
                                 pipeline::CodecContext& ctx) {
  return encode(img.view(), config, ctx);
}

std::vector<std::uint8_t> encode(PixelView img, const EncoderConfig& config) {
  return encode(img, config, pipeline::thread_codec_context());
}

std::vector<std::uint8_t> encode(const image::Image& img, const EncoderConfig& config) {
  return encode(img.view(), config, pipeline::thread_codec_context());
}

// ---------------------------------------------------------------------------
// Reference per-block encoder. The *structure* is the seed implementation
// (materialized padded plane, per-block BlockF copies, per-image table
// derivation); the per-coefficient arithmetic goes through the same
// shared primitives as the pipeline — fdct_aan's multiplicative descale
// and quantize()'s reciprocal rounding rule — so the two paths are
// byte-identical to each other. Streams may differ from the pre-reciprocal
// seed by one quantization step in rare round-half-even boundary cases.
// ---------------------------------------------------------------------------

namespace {

// One frame component prepared for entropy coding, per-block storage.
struct RefComponent {
  int id = 1;
  int h = 1, v = 1;
  int tq = 0;
  int blocks_x = 0;
  int blocks_y = 0;
  std::vector<QuantizedBlock> blocks;  // row-major grid, natural order
};

// Transforms and quantizes a plane into a block grid padded to
// (grid_blocks_x, grid_blocks_y) blocks, one materialized BlockF at a time.
RefComponent make_reference_component(const PlaneF& plane, int id, int h, int v, int tq,
                                      int grid_blocks_x, int grid_blocks_y,
                                      const QuantTable& table) {
  RefComponent comp;
  comp.id = id;
  comp.h = h;
  comp.v = v;
  comp.tq = tq;
  comp.blocks_x = grid_blocks_x;
  comp.blocks_y = grid_blocks_y;
  // Pad the plane up to the full grid by edge replication.
  PlaneF padded(grid_blocks_x * kBlockDim, grid_blocks_y * kBlockDim);
  for (int y = 0; y < padded.height(); ++y) {
    const int sy = std::min(y, plane.height() - 1);
    for (int x = 0; x < padded.width(); ++x) {
      const int sx = std::min(x, plane.width() - 1);
      padded.at(x, y) = plane.at(sx, sy);
    }
  }
  // Reciprocals hoisted out of the block loop so the reference baseline is
  // not slower than the seed's inline divide loop (keeps the bench's
  // reference-vs-pipeline speedup conservative).
  const ReciprocalTable recip(table);
  comp.blocks.resize(static_cast<std::size_t>(grid_blocks_x) * grid_blocks_y);
  for (int by = 0; by < grid_blocks_y; ++by) {
    for (int bx = 0; bx < grid_blocks_x; ++bx) {
      BlockF blk{};
      for (int y = 0; y < kBlockDim; ++y)
        for (int x = 0; x < kBlockDim; ++x)
          blk[static_cast<std::size_t>(y) * kBlockDim + x] =
              padded.at(bx * kBlockDim + x, by * kBlockDim + y) - 128.0f;
      comp.blocks[static_cast<std::size_t>(by) * grid_blocks_x + bx] =
          quantize(fdct(blk), recip);
    }
  }
  return comp;
}

}  // namespace

std::vector<std::uint8_t> encode_reference(const image::Image& img,
                                           const EncoderConfig& config) {
  validate_config(img.view(), config);

  const auto [luma_q, chroma_q] = effective_tables(config);
  const bool color = img.channels() == 3;
  const bool sub420 = color && config.subsampling == Subsampling::k420;

  image::YCbCrPlanes planes = image::to_ycbcr(img);
  std::vector<RefComponent> comps;
  int mcus_x = 0, mcus_y = 0;
  if (!color) {
    mcus_x = ceil_div(img.width(), kBlockDim);
    mcus_y = ceil_div(img.height(), kBlockDim);
    comps.push_back(make_reference_component(planes.y, 1, 1, 1, 0, mcus_x, mcus_y, luma_q));
  } else if (!sub420) {
    mcus_x = ceil_div(img.width(), kBlockDim);
    mcus_y = ceil_div(img.height(), kBlockDim);
    comps.push_back(make_reference_component(planes.y, 1, 1, 1, 0, mcus_x, mcus_y, luma_q));
    comps.push_back(
        make_reference_component(planes.cb, 2, 1, 1, 1, mcus_x, mcus_y, chroma_q));
    comps.push_back(
        make_reference_component(planes.cr, 3, 1, 1, 1, mcus_x, mcus_y, chroma_q));
  } else {
    mcus_x = ceil_div(img.width(), 2 * kBlockDim);
    mcus_y = ceil_div(img.height(), 2 * kBlockDim);
    const PlaneF cb_small = image::downsample_2x2(planes.cb);
    const PlaneF cr_small = image::downsample_2x2(planes.cr);
    comps.push_back(
        make_reference_component(planes.y, 1, 2, 2, 0, 2 * mcus_x, 2 * mcus_y, luma_q));
    comps.push_back(
        make_reference_component(cb_small, 2, 1, 1, 1, mcus_x, mcus_y, chroma_q));
    comps.push_back(
        make_reference_component(cr_small, 3, 1, 1, 1, mcus_x, mcus_y, chroma_q));
  }

  const auto block_of = [&](std::size_t ci, int gx, int gy) -> const QuantizedBlock& {
    const RefComponent& c = comps[ci];
    return c.blocks[static_cast<std::size_t>(gy) * c.blocks_x + gx];
  };

  // Huffman table specs: defaults (derived per image, as the seed did), or
  // optimal from a statistics pass.
  HuffmanSpec dc_luma = HuffmanSpec::default_dc_luma();
  HuffmanSpec ac_luma = HuffmanSpec::default_ac_luma();
  HuffmanSpec dc_chroma = HuffmanSpec::default_dc_chroma();
  HuffmanSpec ac_chroma = HuffmanSpec::default_ac_chroma();
  if (config.optimize_huffman) {
    std::array<SymbolCounts, 2> counts{};
    std::vector<int> dc_pred(comps.size(), 0);
    for_each_data_unit(
        comps.data(), comps.size(), mcus_x, mcus_y, config.restart_interval,
        [&](std::size_t ci, int gx, int gy) {
          count_block_symbols(block_of(ci, gx, gy), dc_pred[ci],
                              counts[static_cast<std::size_t>(comps[ci].tq)]);
        },
        [&](int) { std::fill(dc_pred.begin(), dc_pred.end(), 0); });
    dc_luma = HuffmanSpec::build_optimal(counts[0].dc);
    ac_luma = HuffmanSpec::build_optimal(counts[0].ac);
    if (color) {
      dc_chroma = HuffmanSpec::build_optimal(counts[1].dc);
      ac_chroma = HuffmanSpec::build_optimal(counts[1].ac);
    }
  }

  const HuffmanEncoder dc_enc_luma(dc_luma);
  const HuffmanEncoder ac_enc_luma(ac_luma);
  const HuffmanEncoder dc_enc_chroma(dc_chroma);
  const HuffmanEncoder ac_enc_chroma(ac_chroma);

  std::vector<std::uint8_t> out;
  out.push_back(0xFF);
  out.push_back(kSOI);
  write_app0(out);
  write_comment(out, config.comment);
  write_dqt(out, luma_q, 0);
  if (color) write_dqt(out, chroma_q, 1);
  write_sof0(out, img.width(), img.height(), comps.data(), comps.size());
  write_dht(out, dc_luma, 0, 0);
  write_dht(out, ac_luma, 1, 0);
  if (color) {
    write_dht(out, dc_chroma, 0, 1);
    write_dht(out, ac_chroma, 1, 1);
  }
  if (config.restart_interval > 0) write_dri(out, config.restart_interval);
  write_sos_header(out, comps.data(), comps.size());

  BitWriter bw(out);
  std::vector<int> dc_pred(comps.size(), 0);
  for_each_data_unit(
      comps.data(), comps.size(), mcus_x, mcus_y, config.restart_interval,
      [&](std::size_t ci, int gx, int gy) {
        const bool luma_tables = comps[ci].tq == 0;
        encode_block(bw, block_of(ci, gx, gy), dc_pred[ci],
                     luma_tables ? dc_enc_luma : dc_enc_chroma,
                     luma_tables ? ac_enc_luma : ac_enc_chroma);
      },
      [&](int rst_index) {
        bw.put_marker(static_cast<std::uint8_t>(kRST0 + rst_index));
        std::fill(dc_pred.begin(), dc_pred.end(), 0);
      });
  bw.put_marker(kEOI);
  return out;
}

}  // namespace dnj::jpeg
