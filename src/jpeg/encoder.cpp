#include "jpeg/encoder.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "image/blocks.hpp"
#include "image/color.hpp"
#include "image/resample.hpp"
#include "jpeg/bitio.hpp"
#include "jpeg/block_coder.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/huffman.hpp"
#include "jpeg/markers.hpp"
#include "jpeg/zigzag.hpp"

namespace dnj::jpeg {

namespace {

using image::BlockF;
using image::kBlockDim;
using image::PlaneF;

// One frame component prepared for entropy coding.
struct Component {
  int id = 1;           // component identifier written to SOF0/SOS
  int h = 1, v = 1;     // sampling factors
  int tq = 0;           // quantization table index (0 = luma, 1 = chroma)
  int blocks_x = 0;     // padded block-grid width
  int blocks_y = 0;
  std::vector<QuantizedBlock> blocks;  // row-major grid
};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void write_segment_header(std::vector<std::uint8_t>& out, std::uint8_t marker,
                          std::uint16_t payload_len) {
  out.push_back(0xFF);
  out.push_back(marker);
  put_u16(out, static_cast<std::uint16_t>(payload_len + 2));
}

void write_app0(std::vector<std::uint8_t>& out) {
  write_segment_header(out, kAPP0, 14);
  const char jfif[5] = {'J', 'F', 'I', 'F', '\0'};
  out.insert(out.end(), jfif, jfif + 5);
  out.push_back(1);  // version 1.01
  out.push_back(1);
  out.push_back(0);  // density units: none
  put_u16(out, 1);   // x density
  put_u16(out, 1);   // y density
  out.push_back(0);  // no thumbnail
  out.push_back(0);
}

void write_comment(std::vector<std::uint8_t>& out, const std::string& text) {
  if (text.empty()) return;
  if (text.size() > 65533) throw std::invalid_argument("encode: comment too long");
  write_segment_header(out, kCOM, static_cast<std::uint16_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

void write_dqt(std::vector<std::uint8_t>& out, const QuantTable& table, int index) {
  const bool wide = table.needs_16bit();
  write_segment_header(out, kDQT, static_cast<std::uint16_t>(1 + (wide ? 128 : 64)));
  out.push_back(static_cast<std::uint8_t>(((wide ? 1 : 0) << 4) | index));
  for (int k = 0; k < 64; ++k) {
    const std::uint16_t q = table.step(kZigzag[static_cast<std::size_t>(k)]);
    if (wide) put_u16(out, q);
    else out.push_back(static_cast<std::uint8_t>(q));
  }
}

void write_sof0(std::vector<std::uint8_t>& out, int width, int height,
                const std::vector<Component>& comps) {
  write_segment_header(out, kSOF0, static_cast<std::uint16_t>(6 + 3 * comps.size()));
  out.push_back(8);  // sample precision
  put_u16(out, static_cast<std::uint16_t>(height));
  put_u16(out, static_cast<std::uint16_t>(width));
  out.push_back(static_cast<std::uint8_t>(comps.size()));
  for (const Component& c : comps) {
    out.push_back(static_cast<std::uint8_t>(c.id));
    out.push_back(static_cast<std::uint8_t>((c.h << 4) | c.v));
    out.push_back(static_cast<std::uint8_t>(c.tq));
  }
}

void write_dht(std::vector<std::uint8_t>& out, const HuffmanSpec& spec, int klass, int index) {
  write_segment_header(out, kDHT,
                       static_cast<std::uint16_t>(1 + 16 + spec.symbols.size()));
  out.push_back(static_cast<std::uint8_t>((klass << 4) | index));
  for (int l = 1; l <= 16; ++l) out.push_back(spec.counts[static_cast<std::size_t>(l)]);
  out.insert(out.end(), spec.symbols.begin(), spec.symbols.end());
}

void write_dri(std::vector<std::uint8_t>& out, int interval) {
  write_segment_header(out, kDRI, 2);
  put_u16(out, static_cast<std::uint16_t>(interval));
}

void write_sos_header(std::vector<std::uint8_t>& out, const std::vector<Component>& comps) {
  write_segment_header(out, kSOS, static_cast<std::uint16_t>(1 + 2 * comps.size() + 3));
  out.push_back(static_cast<std::uint8_t>(comps.size()));
  for (const Component& c : comps) {
    out.push_back(static_cast<std::uint8_t>(c.id));
    const int table = c.tq;  // DC and AC table index follow the quant index
    out.push_back(static_cast<std::uint8_t>((table << 4) | table));
  }
  out.push_back(0);   // spectral start
  out.push_back(63);  // spectral end
  out.push_back(0);   // successive approximation
}

// Transforms and quantizes a plane into a block grid padded to
// (mcu_blocks_x, mcu_blocks_y) blocks.
Component make_component(const PlaneF& plane, int id, int h, int v, int tq,
                         int grid_blocks_x, int grid_blocks_y, const QuantTable& table) {
  Component comp;
  comp.id = id;
  comp.h = h;
  comp.v = v;
  comp.tq = tq;
  comp.blocks_x = grid_blocks_x;
  comp.blocks_y = grid_blocks_y;
  // Pad the plane up to the full grid by edge replication.
  PlaneF padded(grid_blocks_x * kBlockDim, grid_blocks_y * kBlockDim);
  for (int y = 0; y < padded.height(); ++y) {
    const int sy = std::min(y, plane.height() - 1);
    for (int x = 0; x < padded.width(); ++x) {
      const int sx = std::min(x, plane.width() - 1);
      padded.at(x, y) = plane.at(sx, sy);
    }
  }
  comp.blocks.resize(static_cast<std::size_t>(grid_blocks_x) * grid_blocks_y);
  for (int by = 0; by < grid_blocks_y; ++by) {
    for (int bx = 0; bx < grid_blocks_x; ++bx) {
      BlockF blk{};
      for (int y = 0; y < kBlockDim; ++y)
        for (int x = 0; x < kBlockDim; ++x)
          blk[static_cast<std::size_t>(y) * kBlockDim + x] =
              padded.at(bx * kBlockDim + x, by * kBlockDim + y) - 128.0f;
      comp.blocks[static_cast<std::size_t>(by) * grid_blocks_x + bx] =
          quantize(fdct(blk), table);
    }
  }
  return comp;
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Walks MCUs in scan order invoking fn(component_index, block) for every
// data unit, handling the restart bookkeeping via the callbacks.
template <typename BlockFn, typename RestartFn>
void for_each_data_unit(const std::vector<Component>& comps, int mcus_x, int mcus_y,
                        int restart_interval, BlockFn&& fn, RestartFn&& restart) {
  int mcu_index = 0;
  for (int my = 0; my < mcus_y; ++my) {
    for (int mx = 0; mx < mcus_x; ++mx) {
      if (restart_interval > 0 && mcu_index > 0 && mcu_index % restart_interval == 0)
        restart((mcu_index / restart_interval - 1) % 8);
      for (std::size_t ci = 0; ci < comps.size(); ++ci) {
        const Component& c = comps[ci];
        for (int by = 0; by < c.v; ++by) {
          for (int bx = 0; bx < c.h; ++bx) {
            const int gx = mx * c.h + bx;
            const int gy = my * c.v + by;
            fn(ci, c.blocks[static_cast<std::size_t>(gy) * c.blocks_x + gx]);
          }
        }
      }
      ++mcu_index;
    }
  }
}

}  // namespace

std::pair<QuantTable, QuantTable> effective_tables(const EncoderConfig& config) {
  if (config.use_custom_tables) return {config.luma_table, config.chroma_table};
  return {QuantTable::annex_k_luma().scaled(config.quality),
          QuantTable::annex_k_chroma().scaled(config.quality)};
}

std::vector<std::uint8_t> encode(const image::Image& img, const EncoderConfig& config) {
  if (img.empty()) throw std::invalid_argument("encode: empty image");
  if (img.width() > 65535 || img.height() > 65535)
    throw std::invalid_argument("encode: image too large for baseline JPEG");
  if (config.restart_interval < 0 || config.restart_interval > 65535)
    throw std::invalid_argument("encode: bad restart interval");

  const auto [luma_q, chroma_q] = effective_tables(config);
  const bool color = img.channels() == 3;
  const bool sub420 = color && config.subsampling == Subsampling::k420;

  // Component planes.
  image::YCbCrPlanes planes = image::to_ycbcr(img);
  std::vector<Component> comps;
  int mcus_x = 0, mcus_y = 0;
  if (!color) {
    mcus_x = ceil_div(img.width(), kBlockDim);
    mcus_y = ceil_div(img.height(), kBlockDim);
    comps.push_back(make_component(planes.y, 1, 1, 1, 0, mcus_x, mcus_y, luma_q));
  } else if (!sub420) {
    mcus_x = ceil_div(img.width(), kBlockDim);
    mcus_y = ceil_div(img.height(), kBlockDim);
    comps.push_back(make_component(planes.y, 1, 1, 1, 0, mcus_x, mcus_y, luma_q));
    comps.push_back(make_component(planes.cb, 2, 1, 1, 1, mcus_x, mcus_y, chroma_q));
    comps.push_back(make_component(planes.cr, 3, 1, 1, 1, mcus_x, mcus_y, chroma_q));
  } else {
    mcus_x = ceil_div(img.width(), 2 * kBlockDim);
    mcus_y = ceil_div(img.height(), 2 * kBlockDim);
    const PlaneF cb_small = image::downsample_2x2(planes.cb);
    const PlaneF cr_small = image::downsample_2x2(planes.cr);
    comps.push_back(make_component(planes.y, 1, 2, 2, 0, 2 * mcus_x, 2 * mcus_y, luma_q));
    comps.push_back(make_component(cb_small, 2, 1, 1, 1, mcus_x, mcus_y, chroma_q));
    comps.push_back(make_component(cr_small, 3, 1, 1, 1, mcus_x, mcus_y, chroma_q));
  }

  // Huffman table specs: defaults, or optimal from a statistics pass.
  HuffmanSpec dc_luma = HuffmanSpec::default_dc_luma();
  HuffmanSpec ac_luma = HuffmanSpec::default_ac_luma();
  HuffmanSpec dc_chroma = HuffmanSpec::default_dc_chroma();
  HuffmanSpec ac_chroma = HuffmanSpec::default_ac_chroma();
  if (config.optimize_huffman) {
    std::array<SymbolCounts, 2> counts{};  // [0]=luma tables, [1]=chroma tables
    std::vector<int> dc_pred(comps.size(), 0);
    for_each_data_unit(
        comps, mcus_x, mcus_y, config.restart_interval,
        [&](std::size_t ci, const QuantizedBlock& blk) {
          count_block_symbols(blk, dc_pred[ci], counts[static_cast<std::size_t>(comps[ci].tq)]);
        },
        [&](int) {
          std::fill(dc_pred.begin(), dc_pred.end(), 0);
        });
    dc_luma = HuffmanSpec::build_optimal(counts[0].dc);
    ac_luma = HuffmanSpec::build_optimal(counts[0].ac);
    if (color) {
      dc_chroma = HuffmanSpec::build_optimal(counts[1].dc);
      ac_chroma = HuffmanSpec::build_optimal(counts[1].ac);
    }
  }

  const HuffmanEncoder dc_enc_luma(dc_luma);
  const HuffmanEncoder ac_enc_luma(ac_luma);
  const HuffmanEncoder dc_enc_chroma(dc_chroma);
  const HuffmanEncoder ac_enc_chroma(ac_chroma);

  // Serialize the stream.
  std::vector<std::uint8_t> out;
  out.push_back(0xFF);
  out.push_back(kSOI);
  write_app0(out);
  write_comment(out, config.comment);
  write_dqt(out, luma_q, 0);
  if (color) write_dqt(out, chroma_q, 1);
  write_sof0(out, img.width(), img.height(), comps);
  write_dht(out, dc_luma, 0, 0);
  write_dht(out, ac_luma, 1, 0);
  if (color) {
    write_dht(out, dc_chroma, 0, 1);
    write_dht(out, ac_chroma, 1, 1);
  }
  if (config.restart_interval > 0) write_dri(out, config.restart_interval);
  write_sos_header(out, comps);

  BitWriter bw(out);
  std::vector<int> dc_pred(comps.size(), 0);
  for_each_data_unit(
      comps, mcus_x, mcus_y, config.restart_interval,
      [&](std::size_t ci, const QuantizedBlock& blk) {
        const bool luma_tables = comps[ci].tq == 0;
        encode_block(bw, blk, dc_pred[ci],
                     luma_tables ? dc_enc_luma : dc_enc_chroma,
                     luma_tables ? ac_enc_luma : ac_enc_chroma);
      },
      [&](int rst_index) {
        bw.put_marker(static_cast<std::uint8_t>(kRST0 + rst_index));
        std::fill(dc_pred.begin(), dc_pred.end(), 0);
      });
  bw.put_marker(kEOI);
  return out;
}

}  // namespace dnj::jpeg
