#include "jpeg/dct.hpp"

#include <array>
#include <cmath>

#include "simd/dispatch.hpp"

namespace dnj::jpeg {

namespace {

constexpr int N = image::kBlockDim;

// Orthonormal DCT-II basis: basis[u][x] = C(u)/2 * cos((2x+1) u pi / 16).
// With this matrix M, the JPEG 2D DCT is M * S * M^T and the inverse is
// M^T * F * M.
struct Basis {
  std::array<std::array<float, N>, N> m{};
  Basis() {
    for (int u = 0; u < N; ++u) {
      const double cu = (u == 0) ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < N; ++x)
        m[u][x] = static_cast<float>(
            0.5 * cu * std::cos((2.0 * x + 1.0) * u * M_PI / 16.0));
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

// AAN output scale: true_coef[u][v] = aan_out[u][v] / (8 * s[u] * s[v]) with
// s[0] = 1 and s[k] = cos(k pi / 16) * sqrt(2) for k > 0. The descale is
// stored as a per-coefficient reciprocal (computed in double, rounded once
// to float) so the hot loop multiplies instead of divides.
struct AanScale {
  std::array<float, N * N> recip{};
  AanScale() {
    std::array<double, N> s{};
    s[0] = 1.0;
    for (int k = 1; k < N; ++k) s[k] = std::cos(k * M_PI / 16.0) * std::sqrt(2.0);
    for (int u = 0; u < N; ++u)
      for (int v = 0; v < N; ++v)
        recip[static_cast<std::size_t>(u) * N + v] =
            static_cast<float>(1.0 / (8.0 * s[u] * s[v]));
  }
};

const AanScale& aan_scale() {
  static const AanScale a;
  return a;
}

// One 8-point AAN forward DCT pass over a strided array.
void aan_1d(float* d, int stride) {
  float* p0 = d;
  float* p1 = d + stride;
  float* p2 = d + 2 * stride;
  float* p3 = d + 3 * stride;
  float* p4 = d + 4 * stride;
  float* p5 = d + 5 * stride;
  float* p6 = d + 6 * stride;
  float* p7 = d + 7 * stride;

  const float tmp0 = *p0 + *p7;
  const float tmp7 = *p0 - *p7;
  const float tmp1 = *p1 + *p6;
  const float tmp6 = *p1 - *p6;
  const float tmp2 = *p2 + *p5;
  const float tmp5 = *p2 - *p5;
  const float tmp3 = *p3 + *p4;
  const float tmp4 = *p3 - *p4;

  // Even part.
  const float tmp10 = tmp0 + tmp3;
  const float tmp13 = tmp0 - tmp3;
  const float tmp11 = tmp1 + tmp2;
  const float tmp12 = tmp1 - tmp2;

  *p0 = tmp10 + tmp11;
  *p4 = tmp10 - tmp11;

  const float z1 = (tmp12 + tmp13) * 0.707106781f;
  *p2 = tmp13 + z1;
  *p6 = tmp13 - z1;

  // Odd part.
  const float t10 = tmp4 + tmp5;
  const float t11 = tmp5 + tmp6;
  const float t12 = tmp6 + tmp7;

  const float z5 = (t10 - t12) * 0.382683433f;
  const float z2 = 0.541196100f * t10 + z5;
  const float z4 = 1.306562965f * t12 + z5;
  const float z3 = t11 * 0.707106781f;

  const float z11 = tmp7 + z3;
  const float z13 = tmp7 - z3;

  *p5 = z13 + z2;
  *p3 = z13 - z2;
  *p1 = z11 + z4;
  *p7 = z11 - z4;
}

// In-place forward AAN DCT of one 64-float block, descaled into the JPEG
// normalization. Shared by fdct_aan and fdct_batch so both produce
// bit-identical coefficients.
void fdct_8x8(float* block) {
  for (int row = 0; row < N; ++row) aan_1d(block + row * N, 1);
  for (int col = 0; col < N; ++col) aan_1d(block + col, N);
  const auto& r = aan_scale().recip;
  for (int k = 0; k < N * N; ++k) block[k] *= r[static_cast<std::size_t>(k)];
}

// Row-column inverse DCT of one block; `out` may alias `freq` (the input is
// fully consumed into `tmp` before `out` is written). Shared by idct_fast
// and idct_batch.
void idct_8x8(const float* freq, float* out) {
  const auto& m = basis().m;
  std::array<std::array<float, N>, N> tmp{};
  for (int v = 0; v < N; ++v) {
    for (int x = 0; x < N; ++x) {
      float acc = 0.0f;
      for (int u = 0; u < N; ++u) acc += m[u][x] * freq[u * N + v];
      tmp[static_cast<std::size_t>(x)][static_cast<std::size_t>(v)] = acc;
    }
  }
  for (int x = 0; x < N; ++x) {
    for (int y = 0; y < N; ++y) {
      float acc = 0.0f;
      for (int v = 0; v < N; ++v)
        acc += m[v][y] * tmp[static_cast<std::size_t>(x)][static_cast<std::size_t>(v)];
      out[x * N + y] = acc;
    }
  }
}

}  // namespace

BlockF fdct_ref(const BlockF& spatial) {
  const auto& m = basis().m;
  // tmp = M * S
  std::array<std::array<float, N>, N> tmp{};
  for (int u = 0; u < N; ++u)
    for (int x = 0; x < N; ++x) {
      float acc = 0.0f;
      for (int k = 0; k < N; ++k) acc += m[u][k] * spatial[k * N + x];
      tmp[u][x] = acc;
    }
  // F = tmp * M^T
  BlockF out{};
  for (int u = 0; u < N; ++u)
    for (int v = 0; v < N; ++v) {
      float acc = 0.0f;
      for (int k = 0; k < N; ++k) acc += tmp[u][k] * m[v][k];
      out[u * N + v] = acc;
    }
  return out;
}

BlockF idct_ref(const BlockF& freq) {
  const auto& m = basis().m;
  // tmp = M^T * F
  std::array<std::array<float, N>, N> tmp{};
  for (int x = 0; x < N; ++x)
    for (int v = 0; v < N; ++v) {
      float acc = 0.0f;
      for (int k = 0; k < N; ++k) acc += m[k][x] * freq[k * N + v];
      tmp[x][v] = acc;
    }
  // S = tmp * M
  BlockF out{};
  for (int x = 0; x < N; ++x)
    for (int y = 0; y < N; ++y) {
      float acc = 0.0f;
      for (int k = 0; k < N; ++k) acc += tmp[x][k] * m[k][y];
      out[x * N + y] = acc;
    }
  return out;
}

BlockF fdct_aan(const BlockF& spatial) {
  BlockF work = spatial;
  fdct_8x8(work.data());
  return work;
}

BlockF idct_fast(const BlockF& freq) {
  BlockF out{};
  idct_8x8(freq.data(), out.data());
  return out;
}

void fdct_batch_scalar(float* blocks, std::size_t count) {
  for (std::size_t b = 0; b < count; ++b) fdct_8x8(blocks + b * image::kBlockSize);
}

void idct_batch_scalar(float* blocks, std::size_t count) {
  for (std::size_t b = 0; b < count; ++b) {
    float* blk = blocks + b * image::kBlockSize;
    idct_8x8(blk, blk);
  }
}

void fdct_batch(float* blocks, std::size_t count) {
  simd::kernels().fdct_batch(blocks, count);
}

void idct_batch(float* blocks, std::size_t count) {
  simd::kernels().idct_batch(blocks, count);
}

const float* aan_descale_table() { return aan_scale().recip.data(); }

const float* dct_basis_table() { return basis().m[0].data(); }

}  // namespace dnj::jpeg
