// Zig-zag scan order (ITU-T T.81 Figure 5). `kZigzag[k]` is the natural
// (row-major) index of the k-th coefficient in scan order; `kInvZigzag` is
// the inverse map. The paper's LF/MF/HF "position based" segmentation is
// defined on this order (LF = scan positions 0..5, MF = 6..27, HF = 28..63).
#pragma once

#include <array>

namespace dnj::jpeg {

inline constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

constexpr std::array<int, 64> make_inv_zigzag() {
  std::array<int, 64> inv{};
  for (int k = 0; k < 64; ++k) inv[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])] = k;
  return inv;
}

/// kInvZigzag[natural_index] = zig-zag scan position.
inline constexpr std::array<int, 64> kInvZigzag = make_inv_zigzag();

}  // namespace dnj::jpeg
