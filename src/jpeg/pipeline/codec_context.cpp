#include "jpeg/pipeline/codec_context.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnj::jpeg::pipeline {

CodecContext::StaticHuffman::StaticHuffman()
    : dc_luma_spec(HuffmanSpec::default_dc_luma()),
      ac_luma_spec(HuffmanSpec::default_ac_luma()),
      dc_chroma_spec(HuffmanSpec::default_dc_chroma()),
      ac_chroma_spec(HuffmanSpec::default_ac_chroma()),
      dc_luma(dc_luma_spec),
      ac_luma(ac_luma_spec),
      dc_chroma(dc_chroma_spec),
      ac_chroma(ac_chroma_spec) {}

const CodecContext::StaticHuffman& CodecContext::static_huffman() {
  if (!static_huffman_) {
    static_huffman_.emplace();
    ++counters_.huffman_builds;
  }
  return *static_huffman_;
}

const ReciprocalTable& CodecContext::reciprocal_for(const QuantTable& table, int slot) {
  if (slot < 0 || slot >= static_cast<int>(recips_.size()))
    throw std::invalid_argument("CodecContext::reciprocal_for: bad slot");
  RecipSlot& s = recips_[static_cast<std::size_t>(slot)];
  if (!s.valid || !(s.table == table)) {
    s.table = table;
    s.recip = ReciprocalTable(table);
    s.valid = true;
    ++counters_.reciprocal_builds;
  }
  return s.recip;
}

const HuffmanDecoder& CodecContext::decoder_for(const HuffmanSpec& spec) {
  const int lut_bits = entropy_lut_bits();
  std::uint64_t key = 0xcbf29ce484222325ull;  // FNV-1a
  const auto mix = [&key](std::uint8_t b) {
    key ^= b;
    key *= 0x100000001b3ull;
  };
  for (int l = 1; l <= 16; ++l) mix(spec.counts[static_cast<std::size_t>(l)]);
  for (const std::uint8_t s : spec.symbols) mix(s);
  mix(static_cast<std::uint8_t>(lut_bits));

  for (DecoderSlot& slot : decoders_) {
    // Exact spec compare behind the hash: a collision must rebuild, never
    // hand back the wrong table.
    if (slot.decoder && slot.key == key && slot.lut_bits == lut_bits &&
        slot.spec.counts == spec.counts && slot.spec.symbols == spec.symbols)
      return *slot.decoder;
  }

  DecoderSlot& slot = decoders_[decoder_next_];
  decoder_next_ = (decoder_next_ + 1) % decoders_.size();
  slot.decoder.emplace(spec);  // validates; throws before the slot is keyed
  slot.key = key;
  slot.lut_bits = lut_bits;
  slot.spec = spec;
  ++counters_.huffman_decoder_builds;
  return *slot.decoder;
}

CodecContext::QualityTables CodecContext::quality_tables(int quality) {
  // Canonicalize exactly like QuantTable::scaled so every out-of-range
  // quality shares the clamped entry (and can never collide with the
  // "empty" sentinel of -1).
  quality = std::clamp(quality, 1, 100);
  if (cached_quality_ != quality) {
    quality_luma_ = QuantTable::annex_k_luma().scaled(quality);
    quality_chroma_ = QuantTable::annex_k_chroma().scaled(quality);
    cached_quality_ = quality;
    ++counters_.quality_table_builds;
  }
  return {quality_luma_, quality_chroma_};
}

CodecContext& thread_codec_context() {
  thread_local CodecContext ctx;
  return ctx;
}

}  // namespace dnj::jpeg::pipeline
