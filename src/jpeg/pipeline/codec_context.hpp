// Per-worker codec state: reusable scratch arenas plus precomputed tables.
//
// A CodecContext owns everything an encode or decode needs beyond the image
// itself:
//
//  * scratch arenas — YCbCr planes, downsampled chroma, one CoeffPlane and
//    one QuantPlane per component, decode-side coefficient stores. All of
//    them reshape in place. A warm context *encodes* a stream of
//    same-sized images with zero per-block and zero per-image allocations
//    (the returned byte vector aside). Decode batches through the same
//    arenas with no per-block allocations, but the 4:2:0 chroma-upsample
//    path still builds per-image plane temporaries (and the decoded Image
//    is always freshly allocated).
//  * the static (Annex K.3) Huffman specs and their derived encoder tables,
//    built once per context instead of once per image — dataset-level
//    callers with optimize_huffman off no longer re-derive them per image.
//  * a two-slot reciprocal-multiplier cache (luma/chroma) keyed by table
//    contents, so the fused quantize pass multiplies instead of divides
//    without rebuilding reciprocals for every image of a transcode run.
//
// Contexts are cheap to create but meant to be reused. They are NOT
// thread-safe; give each worker its own — `thread_codec_context()` hands
// out one per thread, which is how core/transcode and core/sa_optimizer
// get "one arena per worker" through the runtime parallel helpers. Results
// never depend on context state, so the bit-identical-at-any-thread-count
// guarantee is preserved.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "image/color.hpp"
#include "jpeg/huffman.hpp"
#include "jpeg/pipeline/coeff_plane.hpp"
#include "jpeg/quant.hpp"

namespace dnj::jpeg::pipeline {

inline constexpr int kMaxComponents = 3;

class CodecContext {
 public:
  /// The four Annex K.3 default Huffman tables with their derived encoder
  /// lookups, constructed in one shot.
  struct StaticHuffman {
    HuffmanSpec dc_luma_spec, ac_luma_spec, dc_chroma_spec, ac_chroma_spec;
    HuffmanEncoder dc_luma, ac_luma, dc_chroma, ac_chroma;
    StaticHuffman();
  };

  /// Lazily built once per context, then reused for every image.
  const StaticHuffman& static_huffman();

  /// Reciprocal multipliers for `table`, cached per slot (0 = luma,
  /// 1 = chroma). Rebuilt only when the table contents change.
  const ReciprocalTable& reciprocal_for(const QuantTable& table, int slot);

  /// The Annex K tables IJG-scaled to `quality`, cached so a dataset
  /// re-encode at one quality derives them once instead of per image.
  struct QualityTables {
    const QuantTable& luma;
    const QuantTable& chroma;
  };
  QualityTables quality_tables(int quality);

  /// Decoder-side Huffman tables (MINCODE/MAXCODE plus the peek LUT), cached
  /// by table contents and current LUT width. A warm context decoding a
  /// same-table stream (the serving steady state) skips both the canonical
  /// code derivation and the 2^W-entry LUT fill on every image. Sixteen
  /// slots with round-robin replacement: one scan can hold up to eight live
  /// tables (4 DC + 4 AC) and redefinitions mid-stream never evict an entry
  /// the current parse still points at. Returned references stay valid
  /// until at least fifteen further distinct tables are requested.
  const HuffmanDecoder& decoder_for(const HuffmanSpec& spec);

  /// How often the lazily-cached state above was actually (re)built. A warm
  /// context encoding a same-config stream sits at one build each; every
  /// additional rebuild is a cache miss caused by interleaved configs. The
  /// serving layer reports these per worker — they are the direct measure
  /// of how well micro-batching keeps contexts warm.
  struct ReuseCounters {
    std::uint64_t huffman_builds = 0;
    std::uint64_t reciprocal_builds = 0;
    std::uint64_t quality_table_builds = 0;
    std::uint64_t huffman_decoder_builds = 0;
  };
  const ReuseCounters& reuse_counters() const { return counters_; }

  // --- encode-side arenas -------------------------------------------------
  image::YCbCrPlanes ycc;                        ///< color-transform output
  std::array<image::PlaneF, 2> chroma_small;     ///< 4:2:0 downsampled Cb/Cr
  std::array<CoeffPlane, kMaxComponents> coeff;  ///< float DCT planes
  std::array<QuantPlane, kMaxComponents> quant;  ///< zig-zag int16 planes

  // --- decode-side arenas -------------------------------------------------
  std::array<QuantPlane, kMaxComponents> decode_coeffs;  ///< natural-order int16
  CoeffPlane decode_fp;                                  ///< dequantized floats
  std::array<image::PlaneF, kMaxComponents> decode_planes;

 private:
  std::optional<StaticHuffman> static_huffman_;
  struct RecipSlot {
    QuantTable table;
    ReciprocalTable recip;
    bool valid = false;
  };
  std::array<RecipSlot, 2> recips_;
  struct DecoderSlot {
    std::uint64_t key = 0;  // FNV-1a over counts + symbols + LUT width
    int lut_bits = -1;
    HuffmanSpec spec;
    std::optional<HuffmanDecoder> decoder;
  };
  std::array<DecoderSlot, 16> decoders_;
  std::size_t decoder_next_ = 0;  // round-robin replacement cursor
  int cached_quality_ = -1;
  QuantTable quality_luma_, quality_chroma_;
  ReuseCounters counters_;
};

/// One context per thread, created on first use — the per-worker arena the
/// parallel dataset loops (and the default encode/decode entry points)
/// reuse across images.
CodecContext& thread_codec_context();

}  // namespace dnj::jpeg::pipeline
