// Contiguous structure-of-arrays coefficient storage — the codec pipeline's
// working representation for one frame component.
//
// A CoeffPlane holds every 8x8 block of a component back to back with a
// stride of 64 floats: block (bx, by) of the grid lives at
// data()[(by * blocks_x + bx) * 64] in natural (row-major) order. This is
// the layout the batched transforms (jpeg::fdct_batch / jpeg::idct_batch)
// and the fused quantize+zigzag pass operate on in place, replacing the
// seed's per-image std::vector<BlockF> with one flat reusable buffer.
//
// QuantPlane is the int16 sibling that the entropy coder consumes: 64
// zig-zag-ordered quantized coefficients per block, same block addressing.
//
// Both containers reshape without releasing capacity, so a CodecContext
// that encodes a stream of same-sized images performs zero per-block (and,
// after warmup, zero per-image) allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "image/blocks.hpp"

namespace dnj::jpeg::pipeline {

class CoeffPlane {
 public:
  /// Resizes to a blocks_x * blocks_y grid. Existing capacity is reused;
  /// sample values are unspecified afterwards.
  void reshape(int blocks_x, int blocks_y) {
    blocks_x_ = blocks_x;
    blocks_y_ = blocks_y;
    data_.resize(static_cast<std::size_t>(blocks_x) * blocks_y * image::kBlockSize);
  }

  int blocks_x() const { return blocks_x_; }
  int blocks_y() const { return blocks_y_; }
  std::size_t block_count() const { return static_cast<std::size_t>(blocks_x_) * blocks_y_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* block(std::size_t b) { return data_.data() + b * image::kBlockSize; }
  const float* block(std::size_t b) const { return data_.data() + b * image::kBlockSize; }

  /// Tiles `plane` into this grid (edge replication past the plane bounds)
  /// with `bias` added to every sample; pass -128 to fuse the JPEG level
  /// shift. Reuses the buffer — no allocation once warm.
  void tile_from(const image::PlaneF& plane, int blocks_x, int blocks_y, float bias);

 private:
  int blocks_x_ = 0;
  int blocks_y_ = 0;
  std::vector<float> data_;
};

class QuantPlane {
 public:
  void reshape(int blocks_x, int blocks_y) {
    blocks_x_ = blocks_x;
    blocks_y_ = blocks_y;
    data_.resize(static_cast<std::size_t>(blocks_x) * blocks_y * image::kBlockSize);
  }

  int blocks_x() const { return blocks_x_; }
  int blocks_y() const { return blocks_y_; }
  std::size_t block_count() const { return static_cast<std::size_t>(blocks_x_) * blocks_y_; }

  std::int16_t* data() { return data_.data(); }
  const std::int16_t* data() const { return data_.data(); }
  std::int16_t* block(std::size_t b) { return data_.data() + b * image::kBlockSize; }
  const std::int16_t* block(std::size_t b) const {
    return data_.data() + b * image::kBlockSize;
  }

 private:
  int blocks_x_ = 0;
  int blocks_y_ = 0;
  std::vector<std::int16_t> data_;
};

}  // namespace dnj::jpeg::pipeline
