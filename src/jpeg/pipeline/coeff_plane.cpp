#include "jpeg/pipeline/coeff_plane.hpp"

namespace dnj::jpeg::pipeline {

void CoeffPlane::tile_from(const image::PlaneF& plane, int blocks_x, int blocks_y,
                           float bias) {
  reshape(blocks_x, blocks_y);
  image::tile_blocks_into(plane, blocks_x, blocks_y, data_.data(), bias);
}

}  // namespace dnj::jpeg::pipeline
