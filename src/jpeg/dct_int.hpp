// Fixed-point 8x8 DCT/IDCT (13-bit scaled integer basis). This is the
// datapath an edge-sensor ASIC or MCU without an FPU would ship — the
// hardware context of the paper's deployment story. Cross-validated against
// the float reference in tests; `codec_micro` compares their throughput.
#pragma once

#include <cstdint>

#include "image/blocks.hpp"

namespace dnj::jpeg {

/// Integer DCT working precision: basis scaled by 2^13.
inline constexpr int kDctFracBits = 13;

/// Forward DCT on level-shifted integer samples (range [-128, 127]).
/// Output coefficients are in the same JPEG normalization as fdct_ref,
/// rounded to integers.
void fdct_int(const std::int16_t (&spatial)[64], std::int32_t (&freq)[64]);

/// Inverse DCT; output is rounded to integers (still level-shifted).
void idct_int(const std::int32_t (&freq)[64], std::int16_t (&spatial)[64]);

/// Float-block convenience wrappers used by tests to compare against the
/// float pipeline (inputs are rounded to integers first).
image::BlockF fdct_int(const image::BlockF& spatial);
image::BlockF idct_int(const image::BlockF& freq);

}  // namespace dnj::jpeg
