#include "jpeg/huffman.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace dnj::jpeg {

namespace {

HuffmanSpec make_spec(std::initializer_list<std::uint8_t> counts,
                      std::initializer_list<std::uint8_t> symbols) {
  HuffmanSpec spec;
  int l = 1;
  for (std::uint8_t c : counts) spec.counts[static_cast<std::size_t>(l++)] = c;
  spec.symbols.assign(symbols);
  spec.validate();
  return spec;
}

// Generates the canonical code/size lists (T.81 C.2, figures C.1-C.3).
struct CanonicalCodes {
  std::vector<std::uint8_t> sizes;   // per symbol, in spec order
  std::vector<std::uint16_t> codes;  // per symbol, in spec order
};

CanonicalCodes derive_codes(const HuffmanSpec& spec) {
  CanonicalCodes cc;
  for (int l = 1; l <= 16; ++l)
    for (int i = 0; i < spec.counts[static_cast<std::size_t>(l)]; ++i)
      cc.sizes.push_back(static_cast<std::uint8_t>(l));
  cc.codes.resize(cc.sizes.size());
  std::uint16_t code = 0;
  std::size_t k = 0;
  int si = cc.sizes.empty() ? 0 : cc.sizes[0];
  while (k < cc.sizes.size()) {
    while (k < cc.sizes.size() && cc.sizes[k] == si) {
      cc.codes[k] = code;
      ++code;
      ++k;
    }
    code <<= 1;
    ++si;
  }
  return cc;
}

constexpr int kMaxLutBits = 12;  // 4096 entries / table; wider gains nothing

int clamp_lut_bits(int bits) { return std::clamp(bits, 0, kMaxLutBits); }

std::atomic<int>& lut_bits_state() {
  static std::atomic<int> state = [] {
    int bits = 8;
    if (const char* env = std::getenv("DNJ_ENTROPY_LUT_BITS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      // Malformed values keep the default; "0" is a valid way to request
      // the pure bit-by-bit reference decoder.
      if (end != env && *end == '\0') bits = static_cast<int>(parsed);
    }
    return clamp_lut_bits(bits);
  }();
  return state;
}

}  // namespace

int entropy_lut_bits() { return lut_bits_state().load(std::memory_order_relaxed); }

void set_entropy_lut_bits(int bits) {
  lut_bits_state().store(clamp_lut_bits(bits), std::memory_order_relaxed);
}

int HuffmanSpec::symbol_count() const {
  int n = 0;
  for (int l = 1; l <= 16; ++l) n += counts[static_cast<std::size_t>(l)];
  return n;
}

void HuffmanSpec::validate() const {
  if (static_cast<int>(symbols.size()) != symbol_count())
    throw std::invalid_argument("HuffmanSpec: symbol list does not match counts");
  // Kraft inequality: sum over lengths of counts[l] * 2^-l must be <= 1.
  long long kraft = 0;  // scaled by 2^16
  for (int l = 1; l <= 16; ++l)
    kraft += static_cast<long long>(counts[static_cast<std::size_t>(l)]) << (16 - l);
  if (kraft > (1LL << 16))
    throw std::invalid_argument("HuffmanSpec: counts violate Kraft inequality");
}

HuffmanSpec HuffmanSpec::default_dc_luma() {
  return make_spec({0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
                   {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
}

HuffmanSpec HuffmanSpec::default_dc_chroma() {
  return make_spec({0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0},
                   {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
}

HuffmanSpec HuffmanSpec::default_ac_luma() {
  return make_spec(
      {0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d},
      {0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06,
       0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
       0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72,
       0x82, 0x09, 0x0a, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
       0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45,
       0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
       0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75,
       0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
       0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3,
       0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
       0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9,
       0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
       0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4,
       0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa});
}

HuffmanSpec HuffmanSpec::default_ac_chroma() {
  return make_spec(
      {0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77},
      {0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41,
       0x51, 0x07, 0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
       0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1,
       0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25, 0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26,
       0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44,
       0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
       0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74,
       0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
       0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a,
       0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4,
       0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
       0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda,
       0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2, 0xf3, 0xf4,
       0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa});
}

HuffmanSpec HuffmanSpec::build_optimal(const std::array<std::uint32_t, 256>& symbol_freq) {
  // T.81 K.2 / libjpeg jpeg_gen_optimal_table. Index 256 is the reserved
  // pseudo-symbol that guarantees no real symbol gets the all-ones code.
  std::array<long long, 257> freq{};
  for (int i = 0; i < 256; ++i) freq[static_cast<std::size_t>(i)] = symbol_freq[static_cast<std::size_t>(i)];
  freq[256] = 1;

  std::array<int, 257> codesize{};
  std::array<int, 257> others{};
  others.fill(-1);

  for (;;) {
    // c1 = least-frequency symbol (ties: larger value), c2 = next least.
    int c1 = -1;
    long long v = std::numeric_limits<long long>::max();
    for (int i = 0; i <= 256; ++i)
      if (freq[static_cast<std::size_t>(i)] != 0 && freq[static_cast<std::size_t>(i)] <= v) {
        v = freq[static_cast<std::size_t>(i)];
        c1 = i;
      }
    int c2 = -1;
    v = std::numeric_limits<long long>::max();
    for (int i = 0; i <= 256; ++i)
      if (freq[static_cast<std::size_t>(i)] != 0 && freq[static_cast<std::size_t>(i)] <= v && i != c1) {
        v = freq[static_cast<std::size_t>(i)];
        c2 = i;
      }
    if (c2 < 0) break;  // only one tree left

    freq[static_cast<std::size_t>(c1)] += freq[static_cast<std::size_t>(c2)];
    freq[static_cast<std::size_t>(c2)] = 0;

    ++codesize[static_cast<std::size_t>(c1)];
    while (others[static_cast<std::size_t>(c1)] >= 0) {
      c1 = others[static_cast<std::size_t>(c1)];
      ++codesize[static_cast<std::size_t>(c1)];
    }
    others[static_cast<std::size_t>(c1)] = c2;
    ++codesize[static_cast<std::size_t>(c2)];
    while (others[static_cast<std::size_t>(c2)] >= 0) {
      c2 = others[static_cast<std::size_t>(c2)];
      ++codesize[static_cast<std::size_t>(c2)];
    }
  }

  std::array<int, 33> bits{};
  for (int i = 0; i <= 256; ++i)
    if (codesize[static_cast<std::size_t>(i)] != 0) {
      if (codesize[static_cast<std::size_t>(i)] > 32)
        throw std::runtime_error("build_optimal: code length overflow");
      ++bits[static_cast<std::size_t>(codesize[static_cast<std::size_t>(i)])];
    }

  // Limit code lengths to 16 bits (libjpeg's adjustment loop).
  for (int i = 32; i > 16; --i) {
    while (bits[static_cast<std::size_t>(i)] > 0) {
      int j = i - 2;
      while (bits[static_cast<std::size_t>(j)] == 0) --j;
      bits[static_cast<std::size_t>(i)] -= 2;
      ++bits[static_cast<std::size_t>(i - 1)];
      bits[static_cast<std::size_t>(j + 1)] += 2;
      --bits[static_cast<std::size_t>(j)];
    }
  }
  // Remove the reserved pseudo-symbol's code from the longest length.
  int i = 16;
  while (bits[static_cast<std::size_t>(i)] == 0) --i;
  --bits[static_cast<std::size_t>(i)];

  HuffmanSpec spec;
  for (int l = 1; l <= 16; ++l)
    spec.counts[static_cast<std::size_t>(l)] = static_cast<std::uint8_t>(bits[static_cast<std::size_t>(l)]);
  // Symbols sorted by code size then value; the reserved 256 is excluded.
  for (int size = 1; size <= 32; ++size)
    for (int sym = 0; sym < 256; ++sym)
      if (codesize[static_cast<std::size_t>(sym)] == size)
        spec.symbols.push_back(static_cast<std::uint8_t>(sym));
  spec.validate();
  return spec;
}

HuffmanEncoder::HuffmanEncoder(const HuffmanSpec& spec) {
  spec.validate();
  const CanonicalCodes cc = derive_codes(spec);
  for (std::size_t k = 0; k < spec.symbols.size(); ++k) {
    const std::uint8_t sym = spec.symbols[k];
    if (packed_[sym] != 0) throw std::invalid_argument("HuffmanEncoder: duplicate symbol");
    packed_[sym] = (static_cast<std::uint32_t>(cc.codes[k]) << 8) | cc.sizes[k];
  }
  // Pre-pack repeated ZRL codes so the coder emits a 16..47-zero run in one
  // accumulator write instead of up to three table lookups.
  if ((packed_[0xF0] & 0xFFu) != 0) {
    const std::uint64_t code = packed_[0xF0] >> 8;
    const int len = static_cast<int>(packed_[0xF0] & 0xFFu);
    std::uint64_t bits = 0;
    for (int k = 1; k <= 3; ++k) {
      bits = (bits << len) | code;
      zrl_bits_[static_cast<std::size_t>(k)] = bits;
      zrl_len_[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(k * len);
    }
  }
}

HuffmanDecoder::HuffmanDecoder(const HuffmanSpec& spec) : symbols_(spec.symbols) {
  spec.validate();
  const CanonicalCodes cc = derive_codes(spec);
  std::size_t k = 0;
  for (int l = 1; l <= 16; ++l) {
    if (spec.counts[static_cast<std::size_t>(l)] == 0) {
      min_code_[static_cast<std::size_t>(l)] = 0;
      max_code_[static_cast<std::size_t>(l)] = -1;
      val_ptr_[static_cast<std::size_t>(l)] = 0;
      continue;
    }
    val_ptr_[static_cast<std::size_t>(l)] = static_cast<std::int32_t>(k);
    min_code_[static_cast<std::size_t>(l)] = cc.codes[k];
    k += spec.counts[static_cast<std::size_t>(l)];
    max_code_[static_cast<std::size_t>(l)] = cc.codes[k - 1];
  }

  // Peek table: every W-bit window whose prefix is a code of length l <= W
  // maps to {symbol, l}; the 2^(W-l) extensions of each code share one
  // entry. Windows left at len == 0 (longer codes, invalid prefixes) take
  // the bit-by-bit fallback.
  lut_bits_ = entropy_lut_bits();
  if (lut_bits_ > 0) {
    lut_.assign(std::size_t{1} << lut_bits_, LutEntry{});
    std::size_t idx = 0;
    for (int l = 1; l <= 16; ++l) {
      for (int i = 0; i < spec.counts[static_cast<std::size_t>(l)]; ++i, ++idx) {
        if (l > lut_bits_) continue;
        const std::uint32_t base = static_cast<std::uint32_t>(cc.codes[idx])
                                   << (lut_bits_ - l);
        const std::uint32_t span = 1u << (lut_bits_ - l);
        for (std::uint32_t w = 0; w < span; ++w) {
          lut_[base + w].sym = spec.symbols[idx];
          lut_[base + w].len = static_cast<std::uint8_t>(l);
        }
      }
    }
  }
}

int HuffmanDecoder::decode(BitReader& br) const {
  std::int32_t code = br.get_bit();
  if (code < 0) return -1;
  int l = 1;
  while (l <= 16) {
    if (max_code_[static_cast<std::size_t>(l)] >= 0 && code <= max_code_[static_cast<std::size_t>(l)]) {
      const std::int32_t idx =
          val_ptr_[static_cast<std::size_t>(l)] + (code - min_code_[static_cast<std::size_t>(l)]);
      return symbols_[static_cast<std::size_t>(idx)];
    }
    const std::int32_t bit = br.get_bit();
    if (bit < 0) return -1;
    code = (code << 1) | bit;
    ++l;
  }
  return -1;  // invalid code
}

}  // namespace dnj::jpeg
