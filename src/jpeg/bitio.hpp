// Entropy-coded segment bit I/O. JPEG writes bits MSB-first and byte-stuffs
// every 0xFF data byte with a following 0x00 so that decoders can find
// markers by scanning for un-stuffed 0xFF bytes.
#pragma once

#include <cstdint>
#include <vector>

namespace dnj::jpeg {

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Writes the low `count` bits of `bits`, MSB first. count in [0, 24].
  void put_bits(std::uint32_t bits, int count);

  /// Pads the current byte with 1-bits (the JPEG fill convention) and
  /// flushes it. Call before writing any marker.
  void flush();

  /// Flushes, then writes a two-byte marker (0xFF, code) unstuffed.
  void put_marker(std::uint8_t code);

 private:
  void emit_byte(std::uint8_t b);

  std::vector<std::uint8_t>& out_;
  std::uint32_t acc_ = 0;
  int bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  /// Reads `count` bits MSB-first. Returns -1 if the scan data is exhausted
  /// or a marker is hit (callers treat that as corrupt-stream error except
  /// for expected RST/EOI handling).
  std::int32_t get_bits(int count);

  /// Reads a single bit; -1 on marker/end.
  std::int32_t get_bit();

  /// True when positioned at a marker (0xFF followed by a non-stuffing,
  /// non-fill byte).
  bool at_marker() const;

  /// If positioned at a marker, returns its code without consuming; 0
  /// otherwise.
  std::uint8_t peek_marker() const;

  /// Consumes a marker (two bytes) and resets bit state. Returns the code.
  std::uint8_t take_marker();

  /// Byte offset of the next unread byte.
  std::size_t position() const { return pos_; }

 private:
  int next_data_byte();

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint32_t acc_ = 0;
  int bit_count_ = 0;
  bool hit_marker_ = false;
};

}  // namespace dnj::jpeg
