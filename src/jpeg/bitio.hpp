// Entropy-coded segment bit I/O. JPEG writes bits MSB-first and byte-stuffs
// every 0xFF data byte with a following 0x00 so that decoders can find
// markers by scanning for un-stuffed 0xFF bytes.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dnj::jpeg {

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Writes the low `count` bits of `bits`, MSB first. count in [0, 32] —
  /// wide enough for a fused Huffman-code + magnitude field (16 + 11 bits
  /// worst case). Inline: this is the entropy coder's innermost operation.
  /// Bits collect in a 64-bit accumulator, drain four bytes at a time into
  /// an internal staging buffer (the common no-0xFF case skips per-byte
  /// stuffing checks), and the buffer spills to the output vector in bulk.
  /// Buffered bytes reach the vector on flush()/put_marker() — every
  /// entropy-coded segment ends with a marker, so complete streams are
  /// never left stale.
  void put_bits(std::uint32_t bits, int count) {
    if (count < 0 || count > 32) throw std::invalid_argument("BitWriter: bad bit count");
    if (count == 0) return;
    acc_ = (acc_ << count) |
           (bits & static_cast<std::uint32_t>((1ull << count) - 1ull));
    bit_count_ += count;  // stays < 64: drained below 32 after every call
    while (bit_count_ >= 32) {
      const std::uint32_t word =
          static_cast<std::uint32_t>(acc_ >> (bit_count_ - 32));
      bit_count_ -= 32;
      if (buf_len_ + 8 > kBufSize) spill();
      const std::uint32_t inv = ~word;
      if (((inv - 0x01010101u) & ~inv & 0x80808080u) == 0) {
        // No 0xFF byte in the word: stage all four bytes unstuffed.
        buf_[buf_len_] = static_cast<std::uint8_t>(word >> 24);
        buf_[buf_len_ + 1] = static_cast<std::uint8_t>(word >> 16);
        buf_[buf_len_ + 2] = static_cast<std::uint8_t>(word >> 8);
        buf_[buf_len_ + 3] = static_cast<std::uint8_t>(word);
        buf_len_ += 4;
      } else {
        emit_byte(static_cast<std::uint8_t>(word >> 24));
        emit_byte(static_cast<std::uint8_t>(word >> 16));
        emit_byte(static_cast<std::uint8_t>(word >> 8));
        emit_byte(static_cast<std::uint8_t>(word));
      }
    }
  }

  /// Pads the current byte with 1-bits (the JPEG fill convention) and
  /// drains accumulator and staging buffer into the output vector. Call
  /// before writing any marker or inspecting the output.
  void flush();

  /// Flushes, then writes a two-byte marker (0xFF, code) unstuffed.
  void put_marker(std::uint8_t code);

 private:
  static constexpr std::size_t kBufSize = 1024;

  void spill();  // appends buf_[0..buf_len_) to out_ in one insert

  void emit_byte(std::uint8_t b) {
    // Callers guarantee >= 2 free bytes (stuffing may add one).
    buf_[buf_len_++] = b;
    if (b == 0xFF) buf_[buf_len_++] = 0x00;  // byte stuffing
  }

  std::vector<std::uint8_t>& out_;
  std::array<std::uint8_t, kBufSize> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t acc_ = 0;
  int bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  /// Reads `count` bits MSB-first. Returns -1 if the scan data is exhausted
  /// or a marker is hit (callers treat that as corrupt-stream error except
  /// for expected RST/EOI handling).
  std::int32_t get_bits(int count);

  /// Reads a single bit; -1 on marker/end.
  std::int32_t get_bit();

  /// True when positioned at a marker (0xFF followed by a non-stuffing,
  /// non-fill byte).
  bool at_marker() const;

  /// If positioned at a marker, returns its code without consuming; 0
  /// otherwise.
  std::uint8_t peek_marker() const;

  /// Consumes a marker (two bytes) and resets bit state. Returns the code.
  std::uint8_t take_marker();

  /// Byte offset of the next unread byte.
  std::size_t position() const { return pos_; }

 private:
  int next_data_byte();

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint32_t acc_ = 0;
  int bit_count_ = 0;
  bool hit_marker_ = false;
};

}  // namespace dnj::jpeg
