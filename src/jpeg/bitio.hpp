// Entropy-coded segment bit I/O. JPEG writes bits MSB-first and byte-stuffs
// every 0xFF data byte with a following 0x00 so that decoders can find
// markers by scanning for un-stuffed 0xFF bytes.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dnj::jpeg {

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Writes the low `count` bits of `bits`, MSB first. count in [0, 32] —
  /// wide enough for a fused Huffman-code + magnitude field (16 + 11 bits
  /// worst case). Inline: this is the entropy coder's innermost operation.
  /// Bits collect in a 64-bit accumulator and drain four *unstuffed* bytes
  /// at a time into the staging buffer; byte stuffing happens in bulk at
  /// spill time via the dispatched simd stuff_bytes kernel, so the hot path
  /// has no per-byte 0xFF checks at all. Buffered bytes reach the vector on
  /// flush()/put_marker() — every entropy-coded segment ends with a marker,
  /// so complete streams are never left stale.
  void put_bits(std::uint32_t bits, int count) {
    if (count < 0 || count > 32) throw std::invalid_argument("BitWriter: bad bit count");
    // count == 0 falls through harmlessly: mask is 0, shift is 0, no drain.
    acc_ = (acc_ << count) |
           (bits & static_cast<std::uint32_t>((1ull << count) - 1ull));
    bit_count_ += count;  // stays < 64: drained below 32 after every call
    if (bit_count_ >= 32) {
      const std::uint32_t word =
          static_cast<std::uint32_t>(acc_ >> (bit_count_ - 32));
      bit_count_ -= 32;
      if (buf_len_ + 4 > kBufSize) spill();
      store_be32(&buf_[buf_len_], word);
      buf_len_ += 4;
    }
  }

  /// Writes the low `count` bits of `bits`, MSB first, count in [0, 64] —
  /// wide enough for a precomputed multi-symbol field (e.g. a fused run of
  /// three 16-bit ZRL codes). Same bitstream as splitting the field across
  /// two put_bits calls, in one call.
  void put_bits64(std::uint64_t bits, int count) {
    if (count <= 32) {
      put_bits(static_cast<std::uint32_t>(bits), count);
      return;
    }
    if (count > 64) throw std::invalid_argument("BitWriter: bad bit count");
    // Each put_bits leaves < 32 residual bits, so the 32-bit tail always
    // fits the accumulator.
    put_bits(static_cast<std::uint32_t>(bits >> 32), count - 32);
    put_bits(static_cast<std::uint32_t>(bits), 32);
  }

  /// Register-resident emission window for one entropy-coded block. The
  /// cursor checks staging capacity ONCE for the whole block (worst case:
  /// 64 coefficients x 26 bits < kBlockReserve bytes), then keeps the
  /// accumulator, bit count and write pointer in locals so the per-symbol
  /// path has no buffer checks, no validation branches and no member
  /// round-trips. commit() writes the state back; the owning BitWriter must
  /// not be touched between construction and commit(), and each cursor must
  /// be committed before the next one is created.
  class BlockCursor {
   public:
    explicit BlockCursor(BitWriter& w) : w_(w), filled_(w.bit_count_) {
      if (w.buf_len_ + kBlockReserve > kBufSize) w.spill();
      p_ = w.buf_.data() + w.buf_len_;
      // Pin the pending bits to the TOP of the accumulator and immediately
      // retire any whole bytes, so every put() below starts with <= 7
      // pending bits (57 bits of headroom — enough for a packed ZRL triple).
      acc_ = filled_ != 0 ? w.acc_ << (64 - filled_) : 0;
      store_be64(p_, acc_);
      const int adv = filled_ >> 3;
      p_ += adv;
      acc_ <<= adv * 8;
      filled_ &= 7;
    }

    /// Low `count` bits of `bits`, MSB first, count in [1, 48]. Branchless:
    /// an overlapping big-endian 8-byte store retires completed bytes after
    /// every call — entropy-coded bit counts are noise-like, so a
    /// drain-if-full branch here mispredicts constantly. Precondition:
    /// `bits` has no set bits above `count` (Huffman codes and masked
    /// magnitudes satisfy that by construction).
    void put(std::uint64_t bits, int count) {
      acc_ |= bits << (64 - count - filled_);
      filled_ += count;
      store_be64(p_, acc_);
      const int adv = filled_ >> 3;
      p_ += adv;
      acc_ <<= adv * 8;  // adv <= 6: filled_ stays <= 55
      filled_ &= 7;
    }

    /// Re-checks staging capacity between blocks when one cursor spans a
    /// whole run of blocks; spills completed bytes when the next block
    /// might not fit. One predictable pointer compare in the common case.
    void reserve_block() {
      if (static_cast<std::size_t>(p_ - w_.buf_.data()) + kBlockReserve > kBufSize) {
        commit();
        w_.spill();
        p_ = w_.buf_.data();  // buf_len_ is 0 after spill; pending bits stay in acc_
      }
    }

    /// Writes accumulator/pointer state back to the BitWriter.
    void commit() {
      w_.acc_ = filled_ != 0 ? acc_ >> (64 - filled_) : 0;
      w_.bit_count_ = filled_;
      w_.buf_len_ = static_cast<std::size_t>(p_ - w_.buf_.data());
    }

   private:
    BitWriter& w_;
    std::uint8_t* p_;
    std::uint64_t acc_;  // pending bits left-aligned at bit 63
    int filled_;         // pending bit count, <= 7 between put() calls
  };

  /// Pads the current byte with 1-bits (the JPEG fill convention) and
  /// drains accumulator and staging buffer into the output vector. Call
  /// before writing any marker or inspecting the output.
  void flush();

  /// Flushes, then writes a two-byte marker (0xFF, code) unstuffed.
  void put_marker(std::uint8_t code);

 private:
  static constexpr std::size_t kBufSize = 4096;
  // BlockCursor headroom: one block emits at most 27 DC + 63 * 26 AC bits
  // (~209 bytes); 256 covers that plus the cursor's 8-byte store overhang.
  static constexpr std::size_t kBlockReserve = 256;

  // One 4-byte store instead of four byte stores — the drain runs once per
  // 32 emitted bits, squarely on the entropy coder's hot path.
  static void store_be32(std::uint8_t* p, std::uint32_t word) {
#if defined(__GNUC__) || defined(__clang__)
    word = __builtin_bswap32(word);
    __builtin_memcpy(p, &word, 4);
#else
    p[0] = static_cast<std::uint8_t>(word >> 24);
    p[1] = static_cast<std::uint8_t>(word >> 16);
    p[2] = static_cast<std::uint8_t>(word >> 8);
    p[3] = static_cast<std::uint8_t>(word);
#endif
  }

  static void store_be64(std::uint8_t* p, std::uint64_t word) {
#if defined(__GNUC__) || defined(__clang__)
    word = __builtin_bswap64(word);
    __builtin_memcpy(p, &word, 8);
#else
    for (int i = 0; i < 8; ++i)
      p[i] = static_cast<std::uint8_t>(word >> (56 - 8 * i));
#endif
  }

  void spill();  // stuff-copies buf_[0..buf_len_) onto out_ in one pass

  std::vector<std::uint8_t>& out_;
  std::array<std::uint8_t, kBufSize> buf_;  // unstuffed staged bytes
  std::size_t buf_len_ = 0;
  std::uint64_t acc_ = 0;
  int bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  /// Reads `count` bits MSB-first, count in [0, 32]. Returns -1 if the scan
  /// data is exhausted or a marker is hit (callers treat that as a
  /// corrupt-stream error except for expected RST/EOI handling).
  std::int32_t get_bits(int count);

  /// Reads a single bit; -1 on marker/end.
  std::int32_t get_bit();

  /// Tops up the accumulator to at least `count` buffered bits where the
  /// stream allows (count in [1, 32]); returns the number of bits now
  /// buffered (may be less near a marker or the end of data). Pure
  /// lookahead for the table-driven Huffman fast path: never consumes bits
  /// and never latches the marker/end state.
  int ensure(int count) {
    if (bit_count_ < count) refill(count);
    return bit_count_;
  }

  /// The next `count` buffered bits without consuming them, zero-padded on
  /// the right when fewer than `count` bits are buffered. count in [1, 32].
  std::uint32_t peek(int count) const {
    if (bit_count_ >= count)
      return static_cast<std::uint32_t>((acc_ >> (bit_count_ - count)) &
                                        ((1ull << count) - 1ull));
    return static_cast<std::uint32_t>((acc_ & ((1ull << bit_count_) - 1ull))
                                      << (count - bit_count_));
  }

  /// Consumes `count` bits previously observed via ensure()/peek().
  /// Precondition: count <= the buffered count ensure() returned.
  void consume(int count) { bit_count_ -= count; }

  /// True when positioned at a marker (0xFF followed by a non-stuffing,
  /// non-fill byte). Like the other marker helpers this inspects the byte
  /// position, so it is only meaningful when buffered bits have been fully
  /// consumed (start of scan, after a failed read, after take_marker) —
  /// read-ahead buffering may otherwise hold undelivered data bits.
  bool at_marker() const;

  /// If positioned at a marker, returns its code without consuming; 0
  /// otherwise.
  std::uint8_t peek_marker() const;

  /// Consumes a marker (two bytes) and resets bit state. Returns the code.
  std::uint8_t take_marker();

  /// Byte offset of the next unread byte. With read-ahead this can run up
  /// to eight buffered (unconsumed) bits past the logical bit position.
  std::size_t position() const { return pos_; }

  /// Bits buffered but not yet consumed.
  int buffered_bits() const { return bit_count_; }

 private:
  int next_data_byte();
  void refill(int need);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int bit_count_ = 0;
  bool hit_marker_ = false;
};

}  // namespace dnj::jpeg
