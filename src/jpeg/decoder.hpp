// Baseline JFIF decoder: parses the marker stream, decodes the single
// interleaved scan, dequantizes, inverse-transforms, upsamples chroma and
// converts back to RGB (or grayscale). Supports everything our encoder
// emits — 8-bit baseline, 1 or 3 components, sampling factors 1x1/2x2,
// 8- and 16-bit DQT, restart markers — plus SOF1 streams.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/views.hpp"
#include "image/image.hpp"
#include "jpeg/pipeline/codec_context.hpp"
#include "jpeg/quant.hpp"

namespace dnj::jpeg {

/// Parsed header facts, exposed for tests and table-inspection tools.
struct JpegInfo {
  int width = 0;
  int height = 0;
  int components = 0;
  int max_h = 1, max_v = 1;
  int restart_interval = 0;
  std::optional<QuantTable> quant_tables[4];
  std::string comment;
};

/// Decodes a complete JFIF stream. Throws std::runtime_error on malformed
/// input. The context-taking overload decodes through the caller's arenas
/// (coefficient stores, dequantized planes) with batched dequantize + IDCT;
/// the other uses the calling thread's shared context. ByteSpan converts
/// implicitly from std::vector<uint8_t>; callers holding mapped or foreign
/// buffers pass {ptr, size} without a copy.
///
/// Streams with restart intervals decode their independent restart segments
/// on runtime::parallel_for; `num_threads` follows the usual knob semantics
/// (0 = DNJ_THREADS / hardware concurrency, 1 = serial). Output is
/// bit-identical at every thread count.
image::Image decode(ByteSpan bytes);
image::Image decode(ByteSpan bytes, pipeline::CodecContext& ctx, int num_threads = 0);

/// Entropy-decodes the scan into ctx.decode_coeffs (one natural-order
/// QuantPlane per component, padded to the MCU lattice) without
/// dequantizing or reconstructing pixels, and returns the parsed header
/// facts. This is the Huffman-decode stage in isolation — benches time it
/// per stage, and tests memcmp the coefficient planes across decoder
/// configurations.
JpegInfo decode_coefficients(ByteSpan bytes, pipeline::CodecContext& ctx,
                             int num_threads = 0);

/// Parses markers up to (and including) SOS without decoding pixel data.
JpegInfo parse_info(ByteSpan bytes);

/// Size of the entropy-coded scan payload (bytes between the SOS header and
/// the EOI marker). This is the per-image marginal transfer cost in a
/// deployment where quantization/Huffman tables are shipped once — the
/// regime the paper's compression-rate numbers describe (headers are
/// negligible for 256x256 ImageNet files but dominate 32x32 test images).
std::size_t scan_byte_count(ByteSpan bytes);

}  // namespace dnj::jpeg
