// 8x8 forward and inverse DCT in the JPEG (ITU-T T.81) normalization:
//
//   S(u,v) = 1/4 C(u) C(v) sum_x sum_y s(x,y) cos((2x+1)u pi/16) cos((2y+1)v pi/16)
//
// with C(0) = 1/sqrt(2), C(k>0) = 1. Two forward implementations are
// provided: a separable matrix-product reference (`fdct_ref`) and the
// Arai–Agui–Nakajima (AAN) factored transform (`fdct_aan`, 29 multiplies for
// the butterfly stage) whose scaled output is post-multiplied back into the
// JPEG normalization so both produce identical coefficients up to float
// rounding. `codec_micro` benchmarks the two against each other — this is
// the "same hardware cost" argument of the paper: DeepN-JPEG changes only
// table contents, never the transform datapath.
#pragma once

#include "image/blocks.hpp"

namespace dnj::jpeg {

using image::BlockF;

/// Reference forward DCT (separable matrix product).
BlockF fdct_ref(const BlockF& spatial);

/// Reference inverse DCT.
BlockF idct_ref(const BlockF& freq);

/// AAN fast forward DCT, output in JPEG normalization.
BlockF fdct_aan(const BlockF& spatial);

/// Fast separable inverse DCT (row-column with precomputed basis).
BlockF idct_fast(const BlockF& freq);

/// Default transforms used by the codec.
inline BlockF fdct(const BlockF& spatial) { return fdct_aan(spatial); }
inline BlockF idct(const BlockF& freq) { return idct_fast(freq); }

}  // namespace dnj::jpeg
