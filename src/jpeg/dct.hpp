// 8x8 forward and inverse DCT in the JPEG (ITU-T T.81) normalization:
//
//   S(u,v) = 1/4 C(u) C(v) sum_x sum_y s(x,y) cos((2x+1)u pi/16) cos((2y+1)v pi/16)
//
// with C(0) = 1/sqrt(2), C(k>0) = 1. Two forward implementations are
// provided: a separable matrix-product reference (`fdct_ref`) and the
// Arai–Agui–Nakajima (AAN) factored transform (`fdct_aan`, 29 multiplies for
// the butterfly stage) whose scaled output is post-multiplied back into the
// JPEG normalization so both produce identical coefficients up to float
// rounding. `codec_micro` benchmarks the two against each other — this is
// the "same hardware cost" argument of the paper: DeepN-JPEG changes only
// table contents, never the transform datapath.
#pragma once

#include "image/blocks.hpp"

namespace dnj::jpeg {

using image::BlockF;

/// Reference forward DCT (separable matrix product).
BlockF fdct_ref(const BlockF& spatial);

/// Reference inverse DCT.
BlockF idct_ref(const BlockF& freq);

/// AAN fast forward DCT, output in JPEG normalization.
BlockF fdct_aan(const BlockF& spatial);

/// Fast separable inverse DCT (row-column with precomputed basis).
BlockF idct_fast(const BlockF& freq);

/// Default transforms used by the codec.
inline BlockF fdct(const BlockF& spatial) { return fdct_aan(spatial); }
inline BlockF idct(const BlockF& freq) { return idct_fast(freq); }

// ---------------------------------------------------------------------------
// Batched in-place transforms over a contiguous coefficient plane
// (pipeline::CoeffPlane layout: `count` blocks of 64 floats each, stride 64).
// Per-block arithmetic is shared with fdct_aan/idct_fast — the batch and the
// per-block paths produce bit-identical floats, which is what the encoder
// equivalence suite pins down.

/// Forward AAN DCT of every block in place, output in JPEG normalization.
/// Dispatches to the active SIMD level (simd::kernels()).
void fdct_batch(float* blocks, std::size_t count);

/// Inverse DCT of every block in place. Dispatches to the active SIMD level.
void idct_batch(float* blocks, std::size_t count);

/// Scalar reference implementations of the batched transforms — the
/// per-block arithmetic of fdct_aan/idct_fast applied block by block. The
/// SIMD kernel layer uses these as its fallback floor and its
/// bit-equivalence oracle.
void fdct_batch_scalar(float* blocks, std::size_t count);
void idct_batch_scalar(float* blocks, std::size_t count);

/// The 64 per-coefficient reciprocals (row-major u*8+v) that descale AAN
/// butterfly output into the JPEG normalization. Shared with the SIMD
/// kernels so every level multiplies by the identical constants.
const float* aan_descale_table();

/// Orthonormal DCT-II basis, row-major basis[u*8+x] — the matrix the
/// inverse transform (and its SIMD versions) multiplies by.
const float* dct_basis_table();

}  // namespace dnj::jpeg
