// 8x8 forward and inverse DCT in the JPEG (ITU-T T.81) normalization:
//
//   S(u,v) = 1/4 C(u) C(v) sum_x sum_y s(x,y) cos((2x+1)u pi/16) cos((2y+1)v pi/16)
//
// with C(0) = 1/sqrt(2), C(k>0) = 1. Two forward implementations are
// provided: a separable matrix-product reference (`fdct_ref`) and the
// Arai–Agui–Nakajima (AAN) factored transform (`fdct_aan`, 29 multiplies for
// the butterfly stage) whose scaled output is post-multiplied back into the
// JPEG normalization so both produce identical coefficients up to float
// rounding. `codec_micro` benchmarks the two against each other — this is
// the "same hardware cost" argument of the paper: DeepN-JPEG changes only
// table contents, never the transform datapath.
#pragma once

#include "image/blocks.hpp"

namespace dnj::jpeg {

using image::BlockF;

/// Reference forward DCT (separable matrix product).
BlockF fdct_ref(const BlockF& spatial);

/// Reference inverse DCT.
BlockF idct_ref(const BlockF& freq);

/// AAN fast forward DCT, output in JPEG normalization.
BlockF fdct_aan(const BlockF& spatial);

/// Fast separable inverse DCT (row-column with precomputed basis).
BlockF idct_fast(const BlockF& freq);

/// Default transforms used by the codec.
inline BlockF fdct(const BlockF& spatial) { return fdct_aan(spatial); }
inline BlockF idct(const BlockF& freq) { return idct_fast(freq); }

// ---------------------------------------------------------------------------
// Batched in-place transforms over a contiguous coefficient plane
// (pipeline::CoeffPlane layout: `count` blocks of 64 floats each, stride 64).
// Per-block arithmetic is shared with fdct_aan/idct_fast — the batch and the
// per-block paths produce bit-identical floats, which is what the encoder
// equivalence suite pins down.

/// Forward AAN DCT of every block in place, output in JPEG normalization.
void fdct_batch(float* blocks, std::size_t count);

/// Inverse DCT of every block in place.
void idct_batch(float* blocks, std::size_t count);

}  // namespace dnj::jpeg
