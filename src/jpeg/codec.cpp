#include "jpeg/codec.hpp"

namespace dnj::jpeg {

RoundTrip round_trip(const image::Image& img, const EncoderConfig& config,
                     pipeline::CodecContext& ctx) {
  RoundTrip rt;
  rt.bytes = encode(img, config, ctx);
  rt.decoded = decode(rt.bytes, ctx);
  return rt;
}

RoundTrip round_trip(const image::Image& img, const EncoderConfig& config) {
  return round_trip(img, config, pipeline::thread_codec_context());
}

std::size_t encoded_size(const image::Image& img, const EncoderConfig& config,
                         pipeline::CodecContext& ctx) {
  return encode(img, config, ctx).size();
}

std::size_t encoded_size(const image::Image& img, const EncoderConfig& config) {
  return encoded_size(img, config, pipeline::thread_codec_context());
}

double bits_per_pixel(std::size_t encoded_bytes, int width, int height) {
  return 8.0 * static_cast<double>(encoded_bytes) /
         (static_cast<double>(width) * static_cast<double>(height));
}

}  // namespace dnj::jpeg
