#include "jpeg/codec.hpp"

namespace dnj::jpeg {

RoundTrip round_trip(const image::Image& img, const EncoderConfig& config) {
  RoundTrip rt;
  rt.bytes = encode(img, config);
  rt.decoded = decode(rt.bytes);
  return rt;
}

std::size_t encoded_size(const image::Image& img, const EncoderConfig& config) {
  return encode(img, config).size();
}

double bits_per_pixel(std::size_t encoded_bytes, int width, int height) {
  return 8.0 * static_cast<double>(encoded_bytes) /
         (static_cast<double>(width) * static_cast<double>(height));
}

}  // namespace dnj::jpeg
