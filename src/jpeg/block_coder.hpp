// Per-block entropy coding (T.81 F.1.2/F.2.2): DC DPCM with magnitude
// categories, AC run-length coding with ZRL and EOB, in zig-zag order.
// A statistics-gathering pass mirrors the emit pass so the encoder can build
// optimal Huffman tables in two passes.
#pragma once

#include <array>
#include <cstdint>

#include "jpeg/bitio.hpp"
#include "jpeg/huffman.hpp"
#include "jpeg/quant.hpp"

namespace dnj::jpeg {

/// Magnitude category of a coefficient value: the number of bits needed to
/// represent |v| (0 for v == 0). DC categories go to 11, AC to 10 for 8-bit
/// baseline, but values are computed generically. Inline (one call per
/// nonzero coefficient in the entropy coder).
inline int bit_category(int v) {
  const unsigned a = static_cast<unsigned>(v < 0 ? -v : v);
  if (a == 0) return 0;
#if defined(__GNUC__) || defined(__clang__)
  return 32 - __builtin_clz(a);
#else
  int bits = 0;
  for (unsigned t = a; t != 0; t >>= 1) ++bits;
  return bits;
#endif
}

/// Symbol frequency accumulators for one (DC, AC) table pair.
struct SymbolCounts {
  std::array<std::uint32_t, 256> dc{};
  std::array<std::uint32_t, 256> ac{};
};

/// Encodes one quantized block. `dc_pred` is the running DC predictor for
/// the component and is updated in place.
void encode_block(BitWriter& bw, const QuantizedBlock& block, int& dc_pred,
                  const HuffmanEncoder& dc_table, const HuffmanEncoder& ac_table);

/// Tallies the Huffman symbols the block would emit (pass 1 of optimized
/// encoding). Updates `dc_pred` identically to encode_block.
void count_block_symbols(const QuantizedBlock& block, int& dc_pred, SymbolCounts& counts);

/// Encodes one block whose 64 coefficients are already in zig-zag scan
/// order (the layout `quantize_zigzag_batch` emits) — the coder reads the
/// buffer linearly with no permutation lookups. Emits exactly the bits
/// `encode_block` emits for the equivalent natural-order block.
void encode_block_zz(BitWriter& bw, const std::int16_t* zz, int& dc_pred,
                     const HuffmanEncoder& dc_table, const HuffmanEncoder& ac_table);

/// Encodes `count` consecutive zig-zag-order blocks (64 int16 apiece,
/// contiguous — a QuantPlane's layout) with one register-resident bit
/// cursor and one SIMD dispatch lookup for the whole run, instead of per
/// block. Bitstream-identical to `count` encode_block_zz calls. This is
/// the single-component scan fast path; interleaved scans still go block
/// by block.
void encode_blocks_zz(BitWriter& bw, const std::int16_t* zz, std::size_t count,
                      int& dc_pred, const HuffmanEncoder& dc_table,
                      const HuffmanEncoder& ac_table);

/// Statistics pass over a zig-zag-order block, mirroring encode_block_zz.
void count_block_symbols_zz(const std::int16_t* zz, int& dc_pred, SymbolCounts& counts);

/// Decodes one block into natural-order quantized coefficients. Returns
/// false on a corrupt or truncated stream.
bool decode_block(BitReader& br, QuantizedBlock& block, int& dc_pred,
                  const HuffmanDecoder& dc_table, const HuffmanDecoder& ac_table);

/// Same, writing the 64 natural-order coefficients to `block` directly
/// (e.g. into a pipeline::QuantPlane arena slot).
bool decode_block(BitReader& br, std::int16_t* block, int& dc_pred,
                  const HuffmanDecoder& dc_table, const HuffmanDecoder& ac_table);

}  // namespace dnj::jpeg
