// Rate control: pick the IJG quality factor that hits a byte budget — the
// operation an edge device performs when the uplink dictates a size cap
// ("adjusting the quantization factor QF", Section 2.2 of the paper).
#pragma once

#include "jpeg/encoder.hpp"

namespace dnj::jpeg {

struct RateSearchResult {
  int quality = 1;                  ///< chosen QF
  std::vector<std::uint8_t> bytes;  ///< encoded stream at that QF
  int encode_calls = 0;             ///< encodes spent by the search
};

/// Finds the highest quality in [min_quality, max_quality] whose encoded
/// size is <= target_bytes (binary search over the monotone size/quality
/// curve). If even min_quality exceeds the budget, returns min_quality and
/// its (oversized) stream so the caller can decide.
RateSearchResult encode_for_size(const image::Image& img, std::size_t target_bytes,
                                 const EncoderConfig& base_config = {}, int min_quality = 1,
                                 int max_quality = 100);

/// Convenience: target expressed in bits per pixel.
RateSearchResult encode_for_bpp(const image::Image& img, double target_bpp,
                                const EncoderConfig& base_config = {});

}  // namespace dnj::jpeg
