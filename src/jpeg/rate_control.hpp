// Rate control: pick the IJG quality factor that hits a byte budget — the
// operation an edge device performs when the uplink dictates a size cap
// ("adjusting the quantization factor QF", Section 2.2 of the paper).
#pragma once

#include "jpeg/encoder.hpp"

namespace dnj::jpeg {

struct RateSearchResult {
  int quality = 1;                  ///< chosen QF
  std::vector<std::uint8_t> bytes;  ///< encoded stream at that QF
  int encode_calls = 0;             ///< encodes spent by the search
};

/// Finds the highest quality in [min_quality, max_quality] whose encoded
/// size is <= target_bytes (binary search over the monotone size/quality
/// curve). Throws std::invalid_argument (kInvalidArgument at the API
/// boundary) when even min_quality exceeds the budget — an unreachable
/// target is a caller error, never silently clamped to an oversized
/// stream.
RateSearchResult encode_for_size(const image::Image& img, std::size_t target_bytes,
                                 const EncoderConfig& base_config = {}, int min_quality = 1,
                                 int max_quality = 100);

/// Convenience: target expressed in bits per pixel.
RateSearchResult encode_for_bpp(const image::Image& img, double target_bpp,
                                const EncoderConfig& base_config = {});

/// Dataset-level rate point: the quality scaling that brings the *mean*
/// entropy-coded scan payload of an image set under a byte budget.
struct DatasetRateResult {
  /// IJG scaling quality applied. For standard configs this is the QF; for
  /// custom-table configs the designed tables are IJG-scaled by this value
  /// (50 = tables verbatim, 100 = all ones) — the same scaling rule the
  /// serving layer applies per request.
  int quality = 1;
  double mean_scan_bytes = 0.0;  ///< achieved mean scan payload at `quality`
  int encode_calls = 0;          ///< total encodes spent by the search
};

/// Finds the highest quality in [min_quality, max_quality] whose mean
/// entropy-coded scan size over `images` is <= target_mean_bytes. Unlike
/// the single-image searches this one drives custom-table configs too: the
/// table pair is scaled around its designed midpoint (quality 50) instead
/// of replacing it, so the rate point preserves the DeepN band structure.
/// Byte accounting uses jpeg::scan_byte_count — headers/tables ship once
/// per deployment. Throws std::invalid_argument on an empty image set or
/// when even min_quality overshoots the budget.
DatasetRateResult search_dataset_quality(const std::vector<const image::Image*>& images,
                                         double target_mean_bytes,
                                         const EncoderConfig& base_config = {},
                                         int min_quality = 1, int max_quality = 100);

/// The config `search_dataset_quality` encodes with at a given quality:
/// standard configs get quality = q; custom-table configs get both tables
/// IJG-scaled by q (50 = verbatim).
EncoderConfig config_at_quality(const EncoderConfig& base_config, int quality);

}  // namespace dnj::jpeg
