// Convenience facade over the encoder/decoder pair: round trips, rate
// measurement, and the "re-encode a dataset at a given table" operation the
// experiments are built from.
#pragma once

#include "jpeg/decoder.hpp"
#include "jpeg/encoder.hpp"

namespace dnj::jpeg {

/// Result of one compress-decompress round trip.
struct RoundTrip {
  std::vector<std::uint8_t> bytes;  ///< encoded stream
  image::Image decoded;             ///< image after decode
};

/// Encodes then decodes in one call. The context overload runs both legs
/// through the caller's arenas; the default uses the calling thread's
/// shared context, so dataset loops reuse one arena (and one set of cached
/// static Huffman/reciprocal tables) per worker automatically.
RoundTrip round_trip(const image::Image& img, const EncoderConfig& config,
                     pipeline::CodecContext& ctx);
RoundTrip round_trip(const image::Image& img, const EncoderConfig& config = {});

/// Compressed size in bytes for an image under a config (encode only).
std::size_t encoded_size(const image::Image& img, const EncoderConfig& config,
                         pipeline::CodecContext& ctx);
std::size_t encoded_size(const image::Image& img, const EncoderConfig& config = {});

/// Bits per pixel of an encoded stream for a given image geometry.
double bits_per_pixel(std::size_t encoded_bytes, int width, int height);

}  // namespace dnj::jpeg
