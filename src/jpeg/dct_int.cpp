#include "jpeg/dct_int.hpp"

#include <cmath>

namespace dnj::jpeg {

namespace {

constexpr int N = 8;

// Fixed-point orthonormal basis, basis[u][x] = round(2^13 * C(u)/2 *
// cos((2x+1) u pi / 16)).
struct IntBasis {
  std::int32_t m[N][N];
  IntBasis() {
    for (int u = 0; u < N; ++u) {
      const double cu = (u == 0) ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < N; ++x)
        m[u][x] = static_cast<std::int32_t>(std::lround(
            (1 << kDctFracBits) * 0.5 * cu * std::cos((2.0 * x + 1.0) * u * M_PI / 16.0)));
    }
  }
};

const IntBasis& basis() {
  static const IntBasis b;
  return b;
}

std::int32_t descale(std::int64_t v, int bits) {
  return static_cast<std::int32_t>((v + (std::int64_t{1} << (bits - 1))) >> bits);
}

}  // namespace

void fdct_int(const std::int16_t (&spatial)[64], std::int32_t (&freq)[64]) {
  const auto& m = basis().m;
  // tmp = M * S, kept at kDctFracBits of fraction.
  std::int64_t tmp[N][N];
  for (int u = 0; u < N; ++u)
    for (int x = 0; x < N; ++x) {
      std::int64_t acc = 0;
      for (int k = 0; k < N; ++k)
        acc += static_cast<std::int64_t>(m[u][k]) * spatial[k * N + x];
      tmp[u][x] = acc;
    }
  // F = tmp * M^T, descale both passes.
  for (int u = 0; u < N; ++u)
    for (int v = 0; v < N; ++v) {
      std::int64_t acc = 0;
      for (int k = 0; k < N; ++k) acc += tmp[u][k] * m[v][k];
      freq[u * N + v] = descale(acc, 2 * kDctFracBits);
    }
}

void idct_int(const std::int32_t (&freq)[64], std::int16_t (&spatial)[64]) {
  const auto& m = basis().m;
  std::int64_t tmp[N][N];
  for (int x = 0; x < N; ++x)
    for (int v = 0; v < N; ++v) {
      std::int64_t acc = 0;
      for (int k = 0; k < N; ++k)
        acc += static_cast<std::int64_t>(m[k][x]) * freq[k * N + v];
      tmp[x][v] = acc;
    }
  for (int x = 0; x < N; ++x)
    for (int y = 0; y < N; ++y) {
      std::int64_t acc = 0;
      for (int k = 0; k < N; ++k) acc += tmp[x][k] * m[k][y];
      const std::int32_t v = descale(acc, 2 * kDctFracBits);
      spatial[x * N + y] = static_cast<std::int16_t>(v);
    }
}

image::BlockF fdct_int(const image::BlockF& spatial) {
  std::int16_t in[64];
  std::int32_t out[64];
  for (int i = 0; i < 64; ++i)
    in[i] = static_cast<std::int16_t>(std::lround(spatial[static_cast<std::size_t>(i)]));
  fdct_int(in, out);
  image::BlockF res{};
  for (int i = 0; i < 64; ++i) res[static_cast<std::size_t>(i)] = static_cast<float>(out[i]);
  return res;
}

image::BlockF idct_int(const image::BlockF& freq) {
  std::int32_t in[64];
  std::int16_t out[64];
  for (int i = 0; i < 64; ++i)
    in[i] = static_cast<std::int32_t>(std::lround(freq[static_cast<std::size_t>(i)]));
  idct_int(in, out);
  image::BlockF res{};
  for (int i = 0; i < 64; ++i) res[static_cast<std::size_t>(i)] = static_cast<float>(out[i]);
  return res;
}

}  // namespace dnj::jpeg
