// Quantization tables. This is the exact component DeepN-JPEG redesigns:
// everything else in the codec (DCT, zig-zag, entropy coding) is untouched,
// which is how the paper obtains "the same hardware cost" as stock JPEG.
//
// Tables are stored in natural (row-major) order; the DQT marker writer
// converts to zig-zag order on serialization.
#pragma once

#include <array>
#include <cstdint>

#include "image/blocks.hpp"

namespace dnj::jpeg {

/// Quantized DCT block (natural order).
using QuantizedBlock = std::array<std::int16_t, 64>;

class QuantTable {
 public:
  /// Identity table (all steps 1): lossless-up-to-rounding quantization.
  QuantTable();

  /// Builds from 64 natural-order steps; values are clamped to [1, 65535].
  explicit QuantTable(const std::array<std::uint16_t, 64>& natural);

  std::uint16_t step(int natural_index) const { return q_[static_cast<std::size_t>(natural_index)]; }
  std::uint16_t& step(int natural_index) { return q_[static_cast<std::size_t>(natural_index)]; }
  std::uint16_t step_at(int row, int col) const { return q_[static_cast<std::size_t>(row) * 8 + col]; }

  const std::array<std::uint16_t, 64>& natural() const { return q_; }

  /// True if any step exceeds 255, requiring 16-bit DQT precision.
  bool needs_16bit() const;

  /// ITU Annex K.1 luminance table.
  static QuantTable annex_k_luma();
  /// ITU Annex K.2 chrominance table.
  static QuantTable annex_k_chroma();

  /// IJG quality scaling of a base table: quality in [1, 100], 50 = base,
  /// 100 = all ones. Matches jpeg_quality_scaling in libjpeg.
  QuantTable scaled(int quality) const;

  /// Uniform table with every step equal to `q` (the paper's SAME-Q
  /// baseline).
  static QuantTable uniform(std::uint16_t q);

  bool operator==(const QuantTable& o) const { return q_ == o.q_; }

 private:
  std::array<std::uint16_t, 64> q_{};
};

/// Precomputed reciprocal multipliers for a quantization table — the
/// production-codec replacement for per-coefficient divides. The codec's
/// quantization rounding rule is
///
///     v = nearbyintf(c * (1.0f / q))        (round half to even)
///
/// i.e. one float32 multiply by the precomputed reciprocal followed by the
/// IEEE default rounding. Every quantization path (per-block `quantize`,
/// the fused batch pass) applies this exact rule, so per-block and batched
/// encodes are bit-identical.
class ReciprocalTable {
 public:
  ReciprocalTable() = default;
  explicit ReciprocalTable(const QuantTable& table);

  /// Reciprocal of the step at `natural_index`.
  float recip(int natural_index) const {
    return recip_natural_[static_cast<std::size_t>(natural_index)];
  }

  /// The 64 natural-order reciprocals — the raw array the SIMD quantize
  /// kernels consume.
  const float* data() const { return recip_natural_.data(); }

 private:
  std::array<float, 64> recip_natural_{};
};

/// Round half to even without a libm call: adding and subtracting 1.5 * 2^23
/// forces the float onto the integer grid using the FPU's default
/// round-to-nearest-even, matching std::nearbyintf bit for bit wherever the
/// result is not clamped (|x| < 2^22; larger magnitudes clamp to the int16
/// range below either way). This is the codec's quantization rounding rule,
/// shared verbatim by every scalar and SIMD quantization path.
inline float round_half_even(float x) {
  constexpr float kBias = 12582912.0f;  // 1.5 * 2^23
  const float biased = x + kBias;
  return biased - kBias;
}

/// One coefficient of the codec's quantization rule:
/// clamp(round_half_even(c * recip)) into int16.
inline std::int16_t quantize_coeff(float c, float recip) {
  const float v = round_half_even(c * recip);
  const float clamped = v < -32768.0f ? -32768.0f : (v > 32767.0f ? 32767.0f : v);
  return static_cast<std::int16_t>(clamped);
}

/// Quantizes a DCT coefficient block: round(c * (1/q)), natural order.
QuantizedBlock quantize(const image::BlockF& coeffs, const QuantTable& table);

/// Same rule via a prebuilt reciprocal table (no per-call divides).
QuantizedBlock quantize(const image::BlockF& coeffs, const ReciprocalTable& recip);

/// Fused quantize + zig-zag reorder over a contiguous coefficient plane:
/// reads `count` blocks of 64 natural-order floats from `coeffs` and writes
/// `count` blocks of 64 zig-zag-order int16 coefficients to `out` — the
/// layout the Huffman coder consumes directly.
void quantize_zigzag_batch(const float* coeffs, std::size_t count,
                           const ReciprocalTable& recip, std::int16_t* out);

/// Dequantizes: c' = v * q.
image::BlockF dequantize(const QuantizedBlock& quantized, const QuantTable& table);

/// Batched dequantize over natural-order int16 blocks into a float
/// coefficient plane (ready for idct_batch). Applies c' = v * q per
/// coefficient, identical to the per-block `dequantize`.
void dequantize_batch(const std::int16_t* quantized, std::size_t count,
                      const QuantTable& table, float* coeffs);

}  // namespace dnj::jpeg
