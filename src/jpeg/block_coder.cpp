#include "jpeg/block_coder.hpp"

#include <algorithm>
#include <cstdlib>

#include "jpeg/zigzag.hpp"
#include "simd/dispatch.hpp"

namespace dnj::jpeg {

namespace {

// Index of the lowest set bit; m != 0.
int lowest_set_bit(std::uint64_t m) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(m);
#else
  int k = 0;
  while ((m & 1ull) == 0) {
    m >>= 1;
    ++k;
  }
  return k;
#endif
}

// Value extension for decoding (T.81 F.2.2.1 EXTEND): a `size`-bit raw value
// whose MSB is 0 encodes a negative coefficient.
int extend(int v, int size) {
  if (size == 0) return 0;
  if (v < (1 << (size - 1))) return v - (1 << size) + 1;
  return v;
}

// Low `size` bits that encode `v` (negative values use v - 1 semantics).
// Branchless: (v - 1) mod 2^size equals (v + 2^size - 1) mod 2^size, so the
// sign adjustment folds into one add of 0 or -1 — coefficient signs are
// noise-like, and a data-dependent branch here mispredicts half the time.
std::uint32_t magnitude_bits(int v, int size) {
  const int sign = -static_cast<int>(v < 0);  // 0 or -1
  return static_cast<std::uint32_t>(v + sign) & ((1u << size) - 1u);
}

}  // namespace

void encode_block(BitWriter& bw, const QuantizedBlock& block, int& dc_pred,
                  const HuffmanEncoder& dc_table, const HuffmanEncoder& ac_table) {
  const int dc = block[0];
  const int diff = dc - dc_pred;
  dc_pred = dc;
  const int dc_cat = bit_category(diff);
  dc_table.encode(bw, static_cast<std::uint8_t>(dc_cat));
  if (dc_cat > 0) bw.put_bits(magnitude_bits(diff, dc_cat), dc_cat);

  int run = 0;
  for (int k = 1; k < 64; ++k) {
    const int v = block[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      ac_table.encode(bw, 0xF0);  // ZRL: 16 zeros
      run -= 16;
    }
    const int cat = bit_category(v);
    ac_table.encode(bw, static_cast<std::uint8_t>((run << 4) | cat));
    bw.put_bits(magnitude_bits(v, cat), cat);
    run = 0;
  }
  if (run > 0) ac_table.encode(bw, 0x00);  // EOB
}

void count_block_symbols(const QuantizedBlock& block, int& dc_pred, SymbolCounts& counts) {
  const int dc = block[0];
  const int diff = dc - dc_pred;
  dc_pred = dc;
  ++counts.dc[static_cast<std::size_t>(bit_category(diff))];

  int run = 0;
  for (int k = 1; k < 64; ++k) {
    const int v = block[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      ++counts.ac[0xF0];
      run -= 16;
    }
    ++counts.ac[static_cast<std::size_t>((run << 4) | bit_category(v))];
    run = 0;
  }
  if (run > 0) ++counts.ac[0x00];
}

namespace {

// The shared per-block emit body: visits the set bits of `nonzero` (a
// precomputed nonzero-lane mask over `zz`), deriving each run length from
// bit positions instead of walking 63 branchy lanes. ZRL batches
// (run >= 16) go out as one packed multi-symbol write, and everything
// funnels through the caller's BlockCursor so the bit state lives in
// registers for the whole block. Emitted bits are identical to the forward
// run-length walk of encode_block.
inline void emit_block_zz(BitWriter::BlockCursor& cur, const std::int16_t* zz,
                          std::uint64_t nonzero, int& dc_pred,
                          const HuffmanEncoder& dc_table, const HuffmanEncoder& ac_table) {
  const int dc = zz[0];
  const int diff = dc - dc_pred;
  dc_pred = dc;
  const int dc_cat = bit_category(diff);
  dc_table.encode_with_extra(cur, static_cast<std::uint8_t>(dc_cat),
                             magnitude_bits(diff, dc_cat), dc_cat);

  std::uint64_t ac = nonzero & ~1ull;
  int prev = 0;
  while (ac != 0) {
    const int k = lowest_set_bit(ac);
    ac &= ac - 1;
    int run = k - prev - 1;
    prev = k;
    if (run >= 16) {
      ac_table.encode_zrl_run(cur, run >> 4);  // ZRL x (run / 16)
      run &= 15;
    }
    const int v = zz[k];
    const int cat = bit_category(v);
    ac_table.encode_with_extra(cur, static_cast<std::uint8_t>((run << 4) | cat),
                               magnitude_bits(v, cat), cat);
  }
  if (prev != 63) ac_table.encode(cur, 0x00);  // EOB
}

}  // namespace

void encode_block_zz(BitWriter& bw, const std::int16_t* zz, int& dc_pred,
                     const HuffmanEncoder& dc_table, const HuffmanEncoder& ac_table) {
  const std::uint64_t nonzero = simd::kernels().nonzero_mask_i16_64(zz);
  BitWriter::BlockCursor cur(bw);
  emit_block_zz(cur, zz, nonzero, dc_pred, dc_table, ac_table);
  cur.commit();
}

void encode_blocks_zz(BitWriter& bw, const std::int16_t* zz, std::size_t count,
                      int& dc_pred, const HuffmanEncoder& dc_table,
                      const HuffmanEncoder& ac_table) {
  // One dispatch lookup and one cursor for the whole run: the per-block
  // cost drops to a pointer-compare capacity check.
  const auto nonzero_mask = simd::kernels().nonzero_mask_i16_64;
  BitWriter::BlockCursor cur(bw);
  for (std::size_t b = 0; b < count; ++b, zz += 64) {
    cur.reserve_block();
    emit_block_zz(cur, zz, nonzero_mask(zz), dc_pred, dc_table, ac_table);
  }
  cur.commit();
}

void count_block_symbols_zz(const std::int16_t* zz, int& dc_pred, SymbolCounts& counts) {
  const int dc = zz[0];
  const int diff = dc - dc_pred;
  dc_pred = dc;
  ++counts.dc[static_cast<std::size_t>(bit_category(diff))];

  // Mirrors encode_block_zz's mask walk so pass-1 statistics match the
  // emitted symbols exactly.
  std::uint64_t ac = simd::kernels().nonzero_mask_i16_64(zz) & ~1ull;
  int prev = 0;
  while (ac != 0) {
    const int k = lowest_set_bit(ac);
    ac &= ac - 1;
    int run = k - prev - 1;
    prev = k;
    if (run >= 16) {
      counts.ac[0xF0] += static_cast<std::uint32_t>(run >> 4);
      run &= 15;
    }
    ++counts.ac[static_cast<std::size_t>((run << 4) | bit_category(zz[k]))];
  }
  if (prev != 63) ++counts.ac[0x00];
}

bool decode_block(BitReader& br, QuantizedBlock& block, int& dc_pred,
                  const HuffmanDecoder& dc_table, const HuffmanDecoder& ac_table) {
  return decode_block(br, block.data(), dc_pred, dc_table, ac_table);
}

bool decode_block(BitReader& br, std::int16_t* block, int& dc_pred,
                  const HuffmanDecoder& dc_table, const HuffmanDecoder& ac_table) {
  std::fill(block, block + 64, static_cast<std::int16_t>(0));
  const int dc_cat = dc_table.decode_fast(br);
  if (dc_cat < 0 || dc_cat > 15) return false;
  int diff = 0;
  if (dc_cat > 0) {
    const std::int32_t raw = br.get_bits(dc_cat);
    if (raw < 0) return false;
    diff = extend(raw, dc_cat);
  }
  dc_pred += diff;
  block[0] = static_cast<std::int16_t>(dc_pred);

  int k = 1;
  while (k < 64) {
    const int sym = ac_table.decode_fast(br);
    if (sym < 0) return false;
    if (sym == 0x00) break;  // EOB
    const int run = sym >> 4;
    const int cat = sym & 0x0F;
    if (cat == 0) {
      if (sym != 0xF0) return false;  // only ZRL has size 0
      k += 16;
      continue;
    }
    k += run;
    if (k >= 64) return false;
    const std::int32_t raw = br.get_bits(cat);
    if (raw < 0) return false;
    block[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])] =
        static_cast<std::int16_t>(extend(raw, cat));
    ++k;
  }
  return true;
}

}  // namespace dnj::jpeg
