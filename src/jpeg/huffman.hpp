// Canonical Huffman coding for baseline JPEG: the Annex K default tables,
// encode/decode table derivation (T.81 Annexes C and F), and the optimal
// table construction from symbol statistics (T.81 K.2) used when the encoder
// is configured with `optimize_huffman` — the paper's CR numbers depend on
// real entropy coding, so this is implemented in full rather than stubbed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "jpeg/bitio.hpp"

namespace dnj::jpeg {

/// The (BITS, HUFFVAL) specification pair of T.81: counts[l] = number of
/// codes of length l (1-based, l in [1,16]) and the symbol values in order
/// of increasing code length.
struct HuffmanSpec {
  std::array<std::uint8_t, 17> counts{};  // counts[0] unused
  std::vector<std::uint8_t> symbols;

  /// Total number of symbols.
  int symbol_count() const;
  /// Validates the Kraft inequality and symbol bounds; throws on violation.
  void validate() const;

  // Annex K.3 default tables.
  static HuffmanSpec default_dc_luma();
  static HuffmanSpec default_ac_luma();
  static HuffmanSpec default_dc_chroma();
  static HuffmanSpec default_ac_chroma();

  /// Builds an optimal spec from symbol frequencies (index = symbol value,
  /// 256 entries), limiting code length to 16 bits exactly as libjpeg's
  /// jpeg_gen_optimal_table does. Symbols with zero frequency get no code.
  static HuffmanSpec build_optimal(const std::array<std::uint32_t, 256>& freq);
};

/// Encoder-side lookup: code and length per symbol value.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(const HuffmanSpec& spec);

  /// Writes the code for `symbol`; throws std::invalid_argument if the
  /// symbol has no code in this table. Inline: one call per entropy-coded
  /// symbol.
  void encode(BitWriter& bw, std::uint8_t symbol) const {
    if (size_[symbol] == 0)
      throw std::invalid_argument("HuffmanEncoder: symbol has no code");
    bw.put_bits(code_[symbol], size_[symbol]);
  }

  /// Writes the code for `symbol` immediately followed by `extra_count`
  /// magnitude bits in one put_bits call (16 + 11 bits worst case) —
  /// the same bitstream as encode() then put_bits(), with half the calls.
  void encode_with_extra(BitWriter& bw, std::uint8_t symbol, std::uint32_t extra,
                         int extra_count) const {
    if (size_[symbol] == 0)
      throw std::invalid_argument("HuffmanEncoder: symbol has no code");
    bw.put_bits((static_cast<std::uint32_t>(code_[symbol]) << extra_count) | extra,
                size_[symbol] + extra_count);
  }

  int code_length(std::uint8_t symbol) const { return size_[symbol]; }
  bool has_code(std::uint8_t symbol) const { return size_[symbol] != 0; }

 private:
  std::array<std::uint16_t, 256> code_{};
  std::array<std::uint8_t, 256> size_{};
};

/// Decoder-side tables (MINCODE/MAXCODE/VALPTR, T.81 F.2.2.3).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const HuffmanSpec& spec);

  /// Reads one symbol; returns -1 on truncated/invalid stream.
  int decode(BitReader& br) const;

 private:
  std::array<std::int32_t, 17> min_code_{};
  std::array<std::int32_t, 17> max_code_{};  // -1 where no codes of that length
  std::array<std::int32_t, 17> val_ptr_{};
  std::vector<std::uint8_t> symbols_;
};

}  // namespace dnj::jpeg
