// Canonical Huffman coding for baseline JPEG: the Annex K default tables,
// encode/decode table derivation (T.81 Annexes C and F), and the optimal
// table construction from symbol statistics (T.81 K.2) used when the encoder
// is configured with `optimize_huffman` — the paper's CR numbers depend on
// real entropy coding, so this is implemented in full rather than stubbed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "jpeg/bitio.hpp"

namespace dnj::jpeg {

/// The (BITS, HUFFVAL) specification pair of T.81: counts[l] = number of
/// codes of length l (1-based, l in [1,16]) and the symbol values in order
/// of increasing code length.
struct HuffmanSpec {
  std::array<std::uint8_t, 17> counts{};  // counts[0] unused
  std::vector<std::uint8_t> symbols;

  /// Total number of symbols.
  int symbol_count() const;
  /// Validates the Kraft inequality and symbol bounds; throws on violation.
  void validate() const;

  // Annex K.3 default tables.
  static HuffmanSpec default_dc_luma();
  static HuffmanSpec default_ac_luma();
  static HuffmanSpec default_dc_chroma();
  static HuffmanSpec default_ac_chroma();

  /// Builds an optimal spec from symbol frequencies (index = symbol value,
  /// 256 entries), limiting code length to 16 bits exactly as libjpeg's
  /// jpeg_gen_optimal_table does. Symbols with zero frequency get no code.
  static HuffmanSpec build_optimal(const std::array<std::uint32_t, 256>& freq);
};

/// Width in bits of the peek table HuffmanDecoder builds (0 disables the
/// lookup table entirely — pure bit-by-bit reference decoding). Resolved
/// once from the DNJ_ENTROPY_LUT_BITS environment variable (clamped to
/// [0, 12], default 8); set_entropy_lut_bits overrides it for tests and
/// benches. The width only affects decode *speed*: decoded output is
/// bit-identical at every width. Takes effect for decoders constructed
/// after the call; not safe to call concurrently with decoding.
int entropy_lut_bits();
void set_entropy_lut_bits(int bits);

/// Encoder-side lookup: code and length per symbol value.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(const HuffmanSpec& spec);

  /// Writes the code for `symbol`; throws std::invalid_argument if the
  /// symbol has no code in this table. Inline: one call per entropy-coded
  /// symbol.
  void encode(BitWriter& bw, std::uint8_t symbol) const {
    const std::uint32_t e = packed_[symbol];  // (code << 8) | length
    if ((e & 0xFFu) == 0)
      throw std::invalid_argument("HuffmanEncoder: symbol has no code");
    bw.put_bits(e >> 8, static_cast<int>(e & 0xFFu));
  }

  /// Writes the code for `symbol` immediately followed by `extra_count`
  /// magnitude bits in one put_bits call (16 + 11 bits worst case) —
  /// the same bitstream as encode() then put_bits(), with half the calls.
  void encode_with_extra(BitWriter& bw, std::uint8_t symbol, std::uint32_t extra,
                         int extra_count) const {
    const std::uint32_t e = packed_[symbol];  // one load covers code + length
    if ((e & 0xFFu) == 0)
      throw std::invalid_argument("HuffmanEncoder: symbol has no code");
    bw.put_bits(((e >> 8) << extra_count) | extra,
                static_cast<int>(e & 0xFFu) + extra_count);
  }

  /// Writes `zrls` consecutive ZRL (0xF0) codes, zrls in [1, 3] — every
  /// run length 16..63 needs at most three — as one precomputed packed
  /// field (<= 48 bits) through the 64-bit accumulator. Identical bits to
  /// `zrls` encode(bw, 0xF0) calls. Throws std::invalid_argument if the
  /// table has no ZRL code.
  void encode_zrl_run(BitWriter& bw, int zrls) const {
    if (zrls < 1 || zrls > 3 || zrl_len_[zrls] == 0)
      throw std::invalid_argument("HuffmanEncoder: bad ZRL run");
    bw.put_bits64(zrl_bits_[zrls], zrl_len_[zrls]);
  }

  // BlockCursor variants of the three emitters above: same bitstream, but
  // through the register-resident per-block window. These are the zigzag
  // coder's innermost calls.
  void encode(BitWriter::BlockCursor& c, std::uint8_t symbol) const {
    const std::uint32_t e = packed_[symbol];
    if ((e & 0xFFu) == 0)
      throw std::invalid_argument("HuffmanEncoder: symbol has no code");
    c.put(e >> 8, static_cast<int>(e & 0xFFu));
  }
  void encode_with_extra(BitWriter::BlockCursor& c, std::uint8_t symbol,
                         std::uint32_t extra, int extra_count) const {
    const std::uint32_t e = packed_[symbol];
    if ((e & 0xFFu) == 0)
      throw std::invalid_argument("HuffmanEncoder: symbol has no code");
    c.put(((e >> 8) << extra_count) | extra, static_cast<int>(e & 0xFFu) + extra_count);
  }
  void encode_zrl_run(BitWriter::BlockCursor& c, int zrls) const {
    if (zrls < 1 || zrls > 3 || zrl_len_[zrls] == 0)
      throw std::invalid_argument("HuffmanEncoder: bad ZRL run");
    c.put(zrl_bits_[zrls], zrl_len_[zrls]);  // <= 48 bits, one write
  }

  int code_length(std::uint8_t symbol) const {
    return static_cast<int>(packed_[symbol] & 0xFFu);
  }
  bool has_code(std::uint8_t symbol) const { return (packed_[symbol] & 0xFFu) != 0; }

 private:
  // (code << 8) | length per symbol value: the hot path reads one 32-bit
  // entry instead of separate code and size arrays (length 0 = no code).
  std::array<std::uint32_t, 256> packed_{};
  // Precomputed packed ZRL runs: zrl_bits_[k] holds k repetitions of the
  // 0xF0 code, zrl_len_[k] their total length (0 when the table has no ZRL).
  std::array<std::uint64_t, 4> zrl_bits_{};
  std::array<std::uint8_t, 4> zrl_len_{};
};

/// Decoder-side tables: MINCODE/MAXCODE/VALPTR (T.81 F.2.2.3) plus a
/// libjpeg-style N-bit peek table resolving every code of <= N bits in one
/// lookup; longer codes, markers and truncation fall back to the bit-by-bit
/// reference walk.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const HuffmanSpec& spec);

  /// Reads one symbol bit by bit; returns -1 on truncated/invalid stream.
  /// This is the reference path (and the only path when lut_bits() == 0).
  int decode(BitReader& br) const;

  /// Reads one symbol through the peek table when possible. Same result
  /// and same consumed bits as decode() for every stream, including
  /// corrupt ones. Inline: one call per entropy-decoded symbol.
  int decode_fast(BitReader& br) const {
    if (lut_bits_ > 0) {
      const int avail = br.ensure(lut_bits_);
      const LutEntry e = lut_[br.peek(lut_bits_)];
      // Entry valid only when its code fits the *real* buffered bits —
      // zero padding near end-of-scan must not fabricate a short code.
      if (e.len != 0 && e.len <= avail) {
        br.consume(e.len);
        return e.sym;
      }
    }
    return decode(br);
  }

  /// Peek-table width this decoder was built with.
  int lut_bits() const { return lut_bits_; }

 private:
  struct LutEntry {
    std::uint8_t sym = 0;
    std::uint8_t len = 0;  // 0 = no code of <= lut_bits_ bits has this prefix
  };

  std::array<std::int32_t, 17> min_code_{};
  std::array<std::int32_t, 17> max_code_{};  // -1 where no codes of that length
  std::array<std::int32_t, 17> val_ptr_{};
  std::vector<std::uint8_t> symbols_;
  std::vector<LutEntry> lut_;
  int lut_bits_ = 0;
};

}  // namespace dnj::jpeg
