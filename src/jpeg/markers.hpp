// JPEG marker codes (second byte after 0xFF) used by the baseline codec.
#pragma once

#include <cstdint>

namespace dnj::jpeg {

inline constexpr std::uint8_t kSOI = 0xD8;   // start of image
inline constexpr std::uint8_t kEOI = 0xD9;   // end of image
inline constexpr std::uint8_t kSOF0 = 0xC0;  // baseline DCT frame
inline constexpr std::uint8_t kSOF1 = 0xC1;  // extended sequential (accepted on decode)
inline constexpr std::uint8_t kDHT = 0xC4;   // Huffman tables
inline constexpr std::uint8_t kDQT = 0xDB;   // quantization tables
inline constexpr std::uint8_t kDRI = 0xDD;   // restart interval
inline constexpr std::uint8_t kSOS = 0xDA;   // start of scan
inline constexpr std::uint8_t kAPP0 = 0xE0;  // JFIF
inline constexpr std::uint8_t kCOM = 0xFE;   // comment
inline constexpr std::uint8_t kRST0 = 0xD0;  // restart markers D0..D7

inline constexpr bool is_rst(std::uint8_t code) { return code >= 0xD0 && code <= 0xD7; }
inline constexpr bool is_app(std::uint8_t code) { return code >= 0xE0 && code <= 0xEF; }

}  // namespace dnj::jpeg
