#include "jpeg/rate_control.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "jpeg/decoder.hpp"

namespace dnj::jpeg {

RateSearchResult encode_for_size(const image::Image& img, std::size_t target_bytes,
                                 const EncoderConfig& base_config, int min_quality,
                                 int max_quality) {
  if (min_quality < 1 || max_quality > 100 || min_quality > max_quality)
    throw std::invalid_argument("encode_for_size: bad quality bounds");
  if (base_config.use_custom_tables)
    throw std::invalid_argument("encode_for_size: rate search drives the quality knob; "
                                "custom tables have no quality axis");

  RateSearchResult result;
  EncoderConfig cfg = base_config;

  auto encode_at = [&](int q) {
    cfg.quality = q;
    ++result.encode_calls;
    return encode(img, cfg);
  };

  int lo = min_quality, hi = max_quality;
  result.quality = min_quality;
  result.bytes = encode_at(min_quality);
  if (result.bytes.size() > target_bytes)
    throw std::invalid_argument("encode_for_size: target of " + std::to_string(target_bytes) +
                                " bytes is unreachable (quality " +
                                std::to_string(min_quality) + " needs " +
                                std::to_string(result.bytes.size()) + " bytes)");

  // Invariant: quality `lo` fits the budget; search the highest that fits.
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    const std::vector<std::uint8_t> attempt = encode_at(mid);
    if (attempt.size() <= target_bytes) {
      lo = mid;
      result.quality = mid;
      result.bytes = attempt;
    } else {
      hi = mid - 1;
    }
  }
  return result;
}

RateSearchResult encode_for_bpp(const image::Image& img, double target_bpp,
                                const EncoderConfig& base_config) {
  if (target_bpp <= 0.0) throw std::invalid_argument("encode_for_bpp: bpp must be positive");
  const double bytes = target_bpp * static_cast<double>(img.pixel_count()) / 8.0;
  return encode_for_size(img, static_cast<std::size_t>(std::floor(bytes)), base_config);
}

EncoderConfig config_at_quality(const EncoderConfig& base_config, int quality) {
  EncoderConfig cfg = base_config;
  if (cfg.use_custom_tables) {
    cfg.luma_table = base_config.luma_table.scaled(quality);
    cfg.chroma_table = base_config.chroma_table.scaled(quality);
  } else {
    cfg.quality = quality;
  }
  return cfg;
}

DatasetRateResult search_dataset_quality(const std::vector<const image::Image*>& images,
                                         double target_mean_bytes,
                                         const EncoderConfig& base_config, int min_quality,
                                         int max_quality) {
  if (images.empty())
    throw std::invalid_argument("search_dataset_quality: empty image set");
  if (target_mean_bytes <= 0.0)
    throw std::invalid_argument("search_dataset_quality: target must be positive");
  if (min_quality < 1 || max_quality > 100 || min_quality > max_quality)
    throw std::invalid_argument("search_dataset_quality: bad quality bounds");

  DatasetRateResult result;
  auto mean_at = [&](int q) {
    const EncoderConfig cfg = config_at_quality(base_config, q);
    double total = 0.0;
    for (const image::Image* img : images) {
      total += static_cast<double>(scan_byte_count(encode(*img, cfg)));
      ++result.encode_calls;
    }
    return total / static_cast<double>(images.size());
  };

  int lo = min_quality, hi = max_quality;
  result.quality = min_quality;
  result.mean_scan_bytes = mean_at(min_quality);
  if (result.mean_scan_bytes > target_mean_bytes)
    throw std::invalid_argument(
        "search_dataset_quality: target of " + std::to_string(target_mean_bytes) +
        " mean bytes/image is unreachable (quality " + std::to_string(min_quality) +
        " yields " + std::to_string(result.mean_scan_bytes) + ")");

  // Invariant: quality `lo` fits the budget; search the highest that fits.
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    const double mean = mean_at(mid);
    if (mean <= target_mean_bytes) {
      lo = mid;
      result.quality = mid;
      result.mean_scan_bytes = mean;
    } else {
      hi = mid - 1;
    }
  }
  return result;
}

}  // namespace dnj::jpeg
