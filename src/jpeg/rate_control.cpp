#include "jpeg/rate_control.hpp"

#include <cmath>
#include <stdexcept>

namespace dnj::jpeg {

RateSearchResult encode_for_size(const image::Image& img, std::size_t target_bytes,
                                 const EncoderConfig& base_config, int min_quality,
                                 int max_quality) {
  if (min_quality < 1 || max_quality > 100 || min_quality > max_quality)
    throw std::invalid_argument("encode_for_size: bad quality bounds");
  if (base_config.use_custom_tables)
    throw std::invalid_argument("encode_for_size: rate search drives the quality knob; "
                                "custom tables have no quality axis");

  RateSearchResult result;
  EncoderConfig cfg = base_config;

  auto encode_at = [&](int q) {
    cfg.quality = q;
    ++result.encode_calls;
    return encode(img, cfg);
  };

  // The floor is the fallback if the budget is unreachable.
  int lo = min_quality, hi = max_quality;
  result.quality = min_quality;
  result.bytes = encode_at(min_quality);
  if (result.bytes.size() > target_bytes) return result;

  // Invariant: quality `lo` fits the budget; search the highest that fits.
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    const std::vector<std::uint8_t> attempt = encode_at(mid);
    if (attempt.size() <= target_bytes) {
      lo = mid;
      result.quality = mid;
      result.bytes = attempt;
    } else {
      hi = mid - 1;
    }
  }
  return result;
}

RateSearchResult encode_for_bpp(const image::Image& img, double target_bpp,
                                const EncoderConfig& base_config) {
  if (target_bpp <= 0.0) throw std::invalid_argument("encode_for_bpp: bpp must be positive");
  const double bytes = target_bpp * static_cast<double>(img.pixel_count()) / 8.0;
  return encode_for_size(img, static_cast<std::size_t>(std::floor(bytes)), base_config);
}

}  // namespace dnj::jpeg
