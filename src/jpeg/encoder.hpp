// Baseline JFIF encoder. Produces a standard single-scan interleaved
// baseline JPEG stream: SOI, APP0, [COM], DQT, SOF0, DHT, [DRI], SOS,
// entropy-coded data, EOI. Grayscale images use one component; RGB images
// use YCbCr with 4:4:4 or 4:2:0 chroma subsampling.
//
// DeepN-JPEG plugs in here via `use_custom_tables`: the designed
// quantization table replaces the HVS (Annex K) table and nothing else in
// the pipeline changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "jpeg/pipeline/codec_context.hpp"
#include "jpeg/quant.hpp"

namespace dnj::jpeg {

enum class Subsampling {
  k444,  ///< no chroma subsampling
  k420,  ///< 2x2 chroma subsampling (JPEG default)
};

struct EncoderConfig {
  /// IJG-style quality in [1, 100], used when use_custom_tables is false.
  int quality = 75;

  /// When true, luma_table/chroma_table are used verbatim (DeepN-JPEG and
  /// the RM-HF / SAME-Q baselines take this path).
  bool use_custom_tables = false;
  QuantTable luma_table;
  QuantTable chroma_table;

  Subsampling subsampling = Subsampling::k420;

  /// Two-pass encoding with per-image optimal Huffman tables. Slightly
  /// smaller files; identical pixels.
  bool optimize_huffman = false;

  /// Restart interval in MCUs (0 = no restart markers).
  int restart_interval = 0;

  /// Optional COM marker payload.
  std::string comment;
};

/// Encodes an image to a complete JFIF byte stream using the caller's
/// codec context (scratch arenas + cached tables). Performs zero per-block
/// allocations; once the context is warm the only allocation is the
/// returned byte vector. The PixelView forms are the primary entry points
/// — callers holding raw interleaved buffers (mapped files, FFI callers)
/// encode without copying into an Image first; the Image overloads
/// forward via Image::view().
std::vector<std::uint8_t> encode(PixelView img, const EncoderConfig& config,
                                 pipeline::CodecContext& ctx);
std::vector<std::uint8_t> encode(const image::Image& img, const EncoderConfig& config,
                                 pipeline::CodecContext& ctx);

/// Convenience overloads on the calling thread's shared context.
std::vector<std::uint8_t> encode(PixelView img, const EncoderConfig& config = {});
std::vector<std::uint8_t> encode(const image::Image& img, const EncoderConfig& config = {});

/// The pre-pipeline per-block encoder shape (materialized BlockF copies,
/// per-image table derivation, per-coefficient quantization of each block
/// in turn), retained as the reference implementation the equivalence
/// suite and the codec-pipeline bench compare the batched path against.
/// Produces byte-identical streams to `encode`: both paths share the
/// reciprocal quantization rounding rule (see ReciprocalTable), which may
/// deviate from the original divide-based seed by one step in rare
/// round-half-even boundary cases.
std::vector<std::uint8_t> encode_reference(const image::Image& img,
                                           const EncoderConfig& config = {});

/// Resolves the (luma, chroma) table pair the given config will quantize
/// with — Annex K scaled by quality, or the custom tables.
std::pair<QuantTable, QuantTable> effective_tables(const EncoderConfig& config);

/// Appends THE canonical byte serialization of every semantically relevant
/// EncoderConfig field to `out` (fixed-width little-endian fields, custom
/// tables verbatim when active, length-prefixed comment). This is the
/// single source of truth for "are two configs the same computation":
/// the serve layer's config digests and the public API's
/// EncodeOptions::digest() both hash exactly these bytes, so adding a
/// field here changes every derived digest at once — and forgetting to
/// add one is caught by the field-sensitivity test in tests/test_api.cpp.
void append_config_bytes(const EncoderConfig& config, std::vector<std::uint8_t>& out);

}  // namespace dnj::jpeg
