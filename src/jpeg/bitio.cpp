#include "jpeg/bitio.hpp"

#include <stdexcept>

#include "simd/dispatch.hpp"

namespace dnj::jpeg {

void BitWriter::spill() {
  if (buf_len_ == 0) return;
  // Stuff into a stack staging area, then append in one insert. The kernel
  // contract guarantees at most 2x growth, and the vector sees exactly one
  // range insert per spill instead of per-byte push_backs.
  std::uint8_t stuffed[2 * kBufSize];
  const std::size_t n = simd::kernels().stuff_bytes(buf_.data(), buf_len_, stuffed);
  out_.insert(out_.end(), stuffed, stuffed + n);
  buf_len_ = 0;
}

void BitWriter::flush() {
  // Drain whole bytes, then pad the partial byte with 1-bits per T.81
  // B.1.1.5, then push the staging buffer out (stuffing happens there).
  while (bit_count_ >= 8) {
    if (buf_len_ + 1 > kBufSize) spill();
    buf_[buf_len_++] = static_cast<std::uint8_t>((acc_ >> (bit_count_ - 8)) & 0xFF);
    bit_count_ -= 8;
  }
  if (bit_count_ > 0) {
    const int pad = 8 - bit_count_;
    if (buf_len_ + 1 > kBufSize) spill();
    buf_[buf_len_++] =
        static_cast<std::uint8_t>(((acc_ << pad) | ((1u << pad) - 1u)) & 0xFF);
    bit_count_ = 0;
  }
  acc_ = 0;
  spill();
}

void BitWriter::put_marker(std::uint8_t code) {
  flush();
  out_.push_back(0xFF);
  out_.push_back(code);
}

int BitReader::next_data_byte() {
  while (pos_ < size_) {
    const std::uint8_t b = data_[pos_];
    if (b != 0xFF) {
      ++pos_;
      return b;
    }
    // 0xFF: look at the next byte.
    if (pos_ + 1 >= size_) return -1;
    const std::uint8_t next = data_[pos_ + 1];
    if (next == 0x00) {  // stuffed data byte
      pos_ += 2;
      return 0xFF;
    }
    if (next == 0xFF) {  // fill byte, skip one 0xFF and retry
      ++pos_;
      continue;
    }
    return -1;  // real marker: stop bit delivery
  }
  return -1;
}

void BitReader::refill(int need) {
  while (bit_count_ < need) {
    // Fast gulp: a 4-byte word containing no 0xFF can hold neither a
    // stuffed byte nor a marker, so all four bytes are data and load in
    // one shot. Words with any 0xFF fall to the per-byte unstuffing loop.
    if (bit_count_ <= 32 && pos_ + 4 <= size_) {
      const std::uint32_t word = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                                 (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                                 (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                                 static_cast<std::uint32_t>(data_[pos_ + 3]);
      const std::uint32_t inv = ~word;
      if (((inv - 0x01010101u) & ~inv & 0x80808080u) == 0) {
        acc_ = (acc_ << 32) | word;
        bit_count_ += 32;
        pos_ += 4;
        continue;
      }
    }
    const int b = next_data_byte();
    if (b < 0) return;
    acc_ = (acc_ << 8) | static_cast<std::uint64_t>(b);
    bit_count_ += 8;
  }
}

std::int32_t BitReader::get_bits(int count) {
  if (count == 0) return 0;
  if (bit_count_ < count) {
    refill(count);
    if (bit_count_ < count) {
      hit_marker_ = true;
      return -1;
    }
  }
  bit_count_ -= count;
  return static_cast<std::int32_t>((acc_ >> bit_count_) & ((1ull << count) - 1ull));
}

std::int32_t BitReader::get_bit() { return get_bits(1); }

bool BitReader::at_marker() const { return peek_marker() != 0; }

std::uint8_t BitReader::peek_marker() const {
  std::size_t p = pos_;
  while (p + 1 < size_ && data_[p] == 0xFF && data_[p + 1] == 0xFF) ++p;
  if (p + 1 < size_ && data_[p] == 0xFF && data_[p + 1] != 0x00) return data_[p + 1];
  return 0;
}

std::uint8_t BitReader::take_marker() {
  while (pos_ + 1 < size_ && data_[pos_] == 0xFF && data_[pos_ + 1] == 0xFF) ++pos_;
  if (pos_ + 1 >= size_ || data_[pos_] != 0xFF)
    throw std::runtime_error("BitReader: expected marker");
  const std::uint8_t code = data_[pos_ + 1];
  pos_ += 2;
  acc_ = 0;
  bit_count_ = 0;
  hit_marker_ = false;
  return code;
}

}  // namespace dnj::jpeg
