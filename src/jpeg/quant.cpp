#include "jpeg/quant.hpp"

#include <algorithm>
#include <cmath>

#include "jpeg/zigzag.hpp"
#include "simd/dispatch.hpp"

namespace dnj::jpeg {

namespace {

// ITU-T T.81 Annex K.1, natural order.
constexpr std::array<std::uint16_t, 64> kLumaBase = {
    16, 11, 10, 16, 24,  40,  51,  61,
    12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,
    14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,
    24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99};

// ITU-T T.81 Annex K.2, natural order.
constexpr std::array<std::uint16_t, 64> kChromaBase = {
    17, 18, 24, 47, 99, 99, 99, 99,
    18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99};

}  // namespace

QuantTable::QuantTable() { q_.fill(1); }

QuantTable::QuantTable(const std::array<std::uint16_t, 64>& natural) {
  for (int k = 0; k < 64; ++k)
    q_[static_cast<std::size_t>(k)] =
        std::max<std::uint16_t>(natural[static_cast<std::size_t>(k)], 1);
}

bool QuantTable::needs_16bit() const {
  return std::any_of(q_.begin(), q_.end(), [](std::uint16_t v) { return v > 255; });
}

QuantTable QuantTable::annex_k_luma() { return QuantTable(kLumaBase); }
QuantTable QuantTable::annex_k_chroma() { return QuantTable(kChromaBase); }

QuantTable QuantTable::scaled(int quality) const {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<std::uint16_t, 64> out{};
  for (int k = 0; k < 64; ++k) {
    long v = (static_cast<long>(q_[static_cast<std::size_t>(k)]) * scale + 50) / 100;
    v = std::clamp<long>(v, 1, 255);
    out[static_cast<std::size_t>(k)] = static_cast<std::uint16_t>(v);
  }
  return QuantTable(out);
}

QuantTable QuantTable::uniform(std::uint16_t q) {
  std::array<std::uint16_t, 64> out{};
  out.fill(std::max<std::uint16_t>(q, 1));
  return QuantTable(out);
}

ReciprocalTable::ReciprocalTable(const QuantTable& table) {
  for (int k = 0; k < 64; ++k)
    recip_natural_[static_cast<std::size_t>(k)] = 1.0f / static_cast<float>(table.step(k));
}

QuantizedBlock quantize(const image::BlockF& coeffs, const QuantTable& table) {
  return quantize(coeffs, ReciprocalTable(table));
}

QuantizedBlock quantize(const image::BlockF& coeffs, const ReciprocalTable& recip) {
  QuantizedBlock out{};
  for (int k = 0; k < 64; ++k)
    out[static_cast<std::size_t>(k)] =
        quantize_coeff(coeffs[static_cast<std::size_t>(k)], recip.recip(k));
  return out;
}

void quantize_zigzag_batch(const float* coeffs, std::size_t count,
                           const ReciprocalTable& recip, std::int16_t* out) {
  simd::kernels().quantize_zigzag_batch(coeffs, count, recip.data(), out);
}

image::BlockF dequantize(const QuantizedBlock& quantized, const QuantTable& table) {
  image::BlockF out{};
  for (int k = 0; k < 64; ++k)
    out[static_cast<std::size_t>(k)] =
        static_cast<float>(quantized[static_cast<std::size_t>(k)]) *
        static_cast<float>(table.step(k));
  return out;
}

void dequantize_batch(const std::int16_t* quantized, std::size_t count,
                      const QuantTable& table, float* coeffs) {
  float steps[64];
  for (int k = 0; k < 64; ++k) steps[k] = static_cast<float>(table.step(k));
  simd::kernels().dequantize_batch(quantized, count, steps, coeffs);
}

}  // namespace dnj::jpeg
