// Versioned multi-tenant table registry.
//
// "Millions of users" means thousands of live DeepN table configs, not the
// single service-wide pair ServiceConfig carries. The registry maps tenant
// names to immutable configuration snapshots: the tenant's base quant-table
// pair plus the rest of its encoder options. A kDeepnEncode request that
// names a tenant encodes under that tenant's base pair IJG-scaled by the
// request's quality (50 = the base tables verbatim), exactly as the
// service-wide pair behaves for tenantless requests.
//
// Versioning is the concurrency story: put() replaces the whole entry with
// a fresh shared_ptr<const TenantEntry> stamped from a registry-global
// monotonic counter, and find() hands that shared_ptr out. An in-flight
// request pins the snapshot it resolved at submission — a concurrent
// re-registration can never mutate tables under a request half-way through
// an encode, and two responses from one submission batch can never mix
// table generations. The version number is observability (which generation
// served this?), deliberately NOT part of the config digest: digests key on
// *content*, so re-registering identical tables keeps caches warm and two
// tenants with identical configs share batches and cache entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "jpeg/encoder.hpp"

namespace dnj::serve {

/// One tenant's immutable configuration snapshot. Never mutated after
/// publication — replaced wholesale by TableRegistry::put().
struct TenantEntry {
  std::string name;
  std::uint64_t version = 0;  ///< registry-global monotonic publication stamp

  /// The tenant's encoder configuration with custom tables always
  /// materialized: a registration without custom tables gets the Annex K
  /// pair (so request quality then behaves exactly like standard IJG
  /// quality), and `quality` is normalized to 50 — it plays no part in a
  /// custom-table encode, and normalizing it lets two registrations of the
  /// same computation share one digest (batches, caches, shard affinity).
  jpeg::EncoderConfig base;

  /// digest_config(base): the content key everything downstream derives
  /// from — shard affinity, batch compatibility, table-LRU keys.
  std::uint64_t base_digest = 0;

  /// Result-cache byte budget for this tenant (0 = no per-tenant cap; the
  /// cache-wide limits still apply). Enforced by serve::LruCache.
  std::size_t quota_bytes = 0;
};

/// Thread-safe name -> TenantEntry map. One registry may back any number
/// of services (pass the same shared_ptr via ServiceConfig::registry) so a
/// fleet of shards serves one coherent tenant set.
class TableRegistry {
 public:
  TableRegistry() = default;
  TableRegistry(const TableRegistry&) = delete;
  TableRegistry& operator=(const TableRegistry&) = delete;

  /// Creates or replaces `name`, returning the published version. `base`
  /// is normalized as documented on TenantEntry::base.
  std::uint64_t put(const std::string& name, jpeg::EncoderConfig base,
                    std::size_t quota_bytes = 0);

  /// Removes `name`. Returns false when it was not registered. In-flight
  /// requests that already resolved the entry keep their pinned snapshot.
  bool remove(const std::string& name);

  /// The current snapshot for `name`, or null. The returned pointer stays
  /// valid (and immutable) for as long as the caller holds it, regardless
  /// of concurrent put()/remove().
  std::shared_ptr<const TenantEntry> find(const std::string& name) const;

  /// Registered tenant names, sorted (deterministic for stats and tests).
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const TenantEntry>> entries_;
  std::uint64_t next_version_ = 1;
};

}  // namespace dnj::serve
