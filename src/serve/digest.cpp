#include "serve/digest.hpp"

#include <algorithm>
#include <vector>

#include "jpeg/encoder.hpp"

namespace dnj::serve {

namespace {

std::uint64_t mix_i32(std::int32_t v, std::uint64_t seed) {
  return fnv1a(&v, sizeof(v), seed);
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t digest_image(const image::Image& img, std::uint64_t seed) {
  std::uint64_t h = mix_i32(img.width(), seed);
  h = mix_i32(img.height(), h);
  h = mix_i32(img.channels(), h);
  return img.empty() ? h : fnv1a(img.data().data(), img.data().size(), h);
}

std::uint64_t digest_table(const jpeg::QuantTable& table, std::uint64_t seed) {
  return fnv1a(table.natural().data(),
               table.natural().size() * sizeof(table.natural()[0]), seed);
}

std::uint64_t digest_config(const jpeg::EncoderConfig& config, std::uint64_t seed) {
  // One source of truth: hash the config's canonical serialization (the
  // same bytes EncodeOptions::digest() hashes in the public API) instead
  // of hand-listing fields here. A field added to EncoderConfig is added
  // to append_config_bytes once and every derived digest follows. The
  // scratch buffer is thread-local because this runs on the submission
  // hot path (cache keys, batch compatibility) — zero allocations once
  // warm, like the chained-FNV implementation it replaced.
  static thread_local std::vector<std::uint8_t> scratch;
  scratch.clear();
  jpeg::append_config_bytes(config, scratch);
  return fnv1a(scratch.data(), scratch.size(), seed);
}

std::uint64_t request_config_digest(const Request& req) {
  switch (req.kind) {
    case RequestKind::kEncode:
    case RequestKind::kTranscode:
      return digest_config(req.config);
    case RequestKind::kDeepnEncode: {
      // Without a registry in hand, the per-request config is the tenant
      // name plus the quality scaling. Clamp exactly like the handler
      // does, so requests that compute the same thing share a key. (The
      // service itself substitutes deepn_config_digest over the resolved
      // table contents — see the header.)
      const std::uint64_t seed =
          req.tenant.empty() ? kFnvOffset
                             : fnv1a(req.tenant.data(), req.tenant.size());
      return mix_i32(std::clamp(req.quality, 1, 100), seed);
    }
    case RequestKind::kDecode:
    case RequestKind::kInfer:
      break;
  }
  return mix_i32(static_cast<std::int32_t>(req.kind), kFnvOffset);
}

std::uint64_t request_input_digest(const Request& req) {
  const std::uint64_t kind_seed = mix_i32(static_cast<std::int32_t>(req.kind), kFnvOffset);
  switch (req.kind) {
    case RequestKind::kEncode:
    case RequestKind::kDeepnEncode:
      return digest_image(req.image, kind_seed);
    case RequestKind::kDecode:
    case RequestKind::kTranscode:
    case RequestKind::kInfer:
      break;
  }
  return fnv1a(req.bytes.data(), req.bytes.size(), kind_seed);
}

CacheKey request_key(const Request& req) {
  return {request_input_digest(req), request_config_digest(req)};
}

std::uint64_t deepn_config_digest(std::uint64_t tables_digest, int quality) {
  return mix_i32(std::clamp(quality, 1, 100),
                 fnv1a(&tables_digest, sizeof(tables_digest)));
}

bool cacheable(RequestKind kind) {
  return kind == RequestKind::kEncode || kind == RequestKind::kTranscode ||
         kind == RequestKind::kDeepnEncode;
}

}  // namespace dnj::serve
