// Thread-safe LRU cache, shared by every worker of a service instance.
//
// A mutex around a list + hash map is deliberate (same reasoning as the
// runtime queue): entries are whole encoded results or table pairs, so a
// lookup costs a hash and two pointer swaps while the work it saves is a
// full encode — contention is irrelevant next to the savings. Values are
// returned by copy so a hit never holds the lock while the caller uses the
// result, and eviction can never invalidate a response in flight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace dnj::serve {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// Capacity 0 disables the cache: get() always misses, put() is a no-op.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }

  /// Copies the cached value into `*out` and promotes the entry to
  /// most-recently-used. Returns false on a miss.
  bool get(const Key& key, Value* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    *out = it->second->second;
    ++hits_;
    return true;
  }

  /// Inserts (or refreshes) an entry, evicting the least-recently-used one
  /// when full. Refreshing overwrites the value — callers only ever store
  /// deterministic functions of the key, so this is a wash either way.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_.size();
  }

  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }

 private:
  using Entry = std::pair<Key, Value>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> order_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dnj::serve
