// Thread-safe LRU cache, shared by every worker of a service instance.
//
// A mutex around a list + hash map is deliberate (same reasoning as the
// runtime queue): entries are whole encoded results or table pairs, so a
// lookup costs a hash and two pointer swaps while the work it saves is a
// full encode — contention is irrelevant next to the savings. Values are
// returned by copy so a hit never holds the lock while the caller uses the
// result, and eviction can never invalidate a response in flight.
//
// Besides the entry-count capacity, the cache optionally enforces byte
// budgets: a cache-wide `max_bytes` ceiling and a per-tenant
// `tenant_quota_bytes` cap. The quota is the multi-tenant fairness story —
// a tenant that floods the cache evicts its OWN least-recently-used
// entries once over quota, never everyone else's. Callers opt in per entry
// by using the put() overload that carries a byte size and a tenant id;
// the two-argument put() records zero bytes and the default tenant, which
// keeps byte-blind users (the scaled-table cache) unaffected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace dnj::serve {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// Capacity 0 disables the cache: get() always misses, put() is a no-op.
  /// `max_bytes` caps the summed entry sizes cache-wide, `tenant_quota_bytes`
  /// per tenant id; 0 disables either limit.
  explicit LruCache(std::size_t capacity, std::size_t max_bytes = 0,
                    std::size_t tenant_quota_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes), tenant_quota_(tenant_quota_bytes) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }
  std::size_t max_bytes() const { return max_bytes_; }
  std::size_t tenant_quota_bytes() const { return tenant_quota_; }

  /// Copies the cached value into `*out` and promotes the entry to
  /// most-recently-used. Returns false on a miss.
  bool get(const Key& key, Value* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    *out = it->second->value;
    ++hits_;
    return true;
  }

  /// Byte-blind insert: zero recorded size, default tenant (id 0).
  void put(const Key& key, Value value) { put(key, std::move(value), 0, 0); }

  /// Inserts (or refreshes) an entry of `bytes` size owned by `tenant`,
  /// evicting as needed: first the owning tenant's own LRU entries while it
  /// is over quota (counted as quota_evictions), then the cache-wide LRU
  /// while over the entry or byte capacity. Refreshing overwrites value and
  /// accounting — callers only ever store deterministic functions of the
  /// key, so this is a wash either way. A value that alone exceeds a byte
  /// budget is not cached at all (admitting it would just evict the world
  /// and then get evicted by the next insert).
  void put(const Key& key, Value value, std::size_t bytes, std::uint64_t tenant) {
    if (capacity_ == 0) return;
    if ((max_bytes_ != 0 && bytes > max_bytes_) ||
        (tenant_quota_ != 0 && bytes > tenant_quota_))
      return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      Entry& e = *it->second;
      debit_locked(e);
      e.value = std::move(value);
      e.bytes = bytes;
      e.tenant = tenant;
      credit_locked(e);
      order_.splice(order_.begin(), order_, it->second);
    } else {
      evict_for_tenant_locked(tenant, bytes);
      while (order_.size() >= capacity_ ||
             (max_bytes_ != 0 && bytes_ + bytes > max_bytes_))
        evict_back_locked(&evictions_);
      order_.push_front(Entry{key, std::move(value), bytes, tenant});
      map_[key] = order_.begin();
      credit_locked(order_.front());
      return;
    }
    // Refresh path: the promoted entry sits at the front, so the eviction
    // loops below can only reach it last — and never do, because its size
    // passed the single-value budget checks above.
    evict_for_tenant_locked(tenant, 0);
    while (order_.size() > capacity_ || (max_bytes_ != 0 && bytes_ > max_bytes_))
      evict_back_locked(&evictions_);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_.size();
  }

  /// Summed recorded entry sizes.
  std::size_t bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
  }

  /// Recorded bytes currently cached for `tenant`.
  std::size_t tenant_bytes(std::uint64_t tenant) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenant_bytes_.find(tenant);
    return it == tenant_bytes_.end() ? 0 : it->second;
  }

  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }
  /// Evictions forced by a tenant exceeding its own quota (a subset of the
  /// fairness story, disjoint from the capacity evictions above).
  std::uint64_t quota_evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return quota_evictions_;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t bytes = 0;
    std::uint64_t tenant = 0;
  };

  void credit_locked(const Entry& e) {
    bytes_ += e.bytes;
    if (e.bytes != 0) tenant_bytes_[e.tenant] += e.bytes;
  }

  void debit_locked(const Entry& e) {
    bytes_ -= e.bytes;
    if (e.bytes != 0) {
      const auto it = tenant_bytes_.find(e.tenant);
      if ((it->second -= e.bytes) == 0) tenant_bytes_.erase(it);
    }
  }

  void evict_back_locked(std::uint64_t* counter) {
    debit_locked(order_.back());
    map_.erase(order_.back().key);
    order_.pop_back();
    ++*counter;
  }

  /// Evicts `tenant`'s own least-recently-used entries until `incoming`
  /// more bytes fit under its quota.
  void evict_for_tenant_locked(std::uint64_t tenant, std::size_t incoming) {
    if (tenant_quota_ == 0) return;
    while (true) {
      const auto tb = tenant_bytes_.find(tenant);
      const std::size_t held = tb == tenant_bytes_.end() ? 0 : tb->second;
      if (held + incoming <= tenant_quota_) return;
      // Walk from the LRU end to the tenant's oldest entry. held > 0 here
      // (incoming alone fits, per the single-value check), so one exists.
      auto victim = --order_.end();
      while (victim->tenant != tenant || victim->bytes == 0) --victim;
      debit_locked(*victim);
      map_.erase(victim->key);
      order_.erase(victim);
      ++quota_evictions_;
    }
  }

  const std::size_t capacity_;
  const std::size_t max_bytes_;
  const std::size_t tenant_quota_;
  mutable std::mutex mutex_;
  std::list<Entry> order_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map_;
  std::unordered_map<std::uint64_t, std::size_t> tenant_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t quota_evictions_ = 0;
};

}  // namespace dnj::serve
