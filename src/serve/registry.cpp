#include "serve/registry.hpp"

#include <algorithm>
#include <utility>

#include "serve/digest.hpp"

namespace dnj::serve {

std::uint64_t TableRegistry::put(const std::string& name, jpeg::EncoderConfig base,
                                 std::size_t quota_bytes) {
  if (!base.use_custom_tables) {
    base.use_custom_tables = true;
    base.luma_table = jpeg::QuantTable::annex_k_luma();
    base.chroma_table = jpeg::QuantTable::annex_k_chroma();
  }
  // Quality does not participate in a custom-table encode; normalizing it
  // makes "same tables, different leftover quality" one digest, not many.
  base.quality = 50;

  auto entry = std::make_shared<TenantEntry>();
  entry->name = name;
  entry->base = std::move(base);
  entry->base_digest = digest_config(entry->base);
  entry->quota_bytes = quota_bytes;

  std::lock_guard<std::mutex> lock(mutex_);
  entry->version = next_version_++;
  entries_[name] = entry;
  return entry->version;
}

bool TableRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.erase(name) > 0;
}

std::shared_ptr<const TenantEntry> TableRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::string> TableRegistry::names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t TableRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace dnj::serve
