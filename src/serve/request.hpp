// Request/response vocabulary of the serving layer.
//
// One Request struct covers every operation the service exposes; which
// fields are inputs depends on the kind. Responses are plain values — the
// service fulfills a std::future<Response> per request, so results cross
// threads by move with no shared mutable state.
//
// The serving determinism contract: a Response's payload (bytes, image
// pixels, probs) is bit-identical to the equivalent synchronous
// single-threaded call, regardless of worker count, micro-batching
// decisions, cache hits, or arrival order. Only the observability fields
// (cache_hit, batch_size, latencies) depend on scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "jpeg/encoder.hpp"

namespace dnj::serve {

enum class RequestKind : int {
  kEncode = 0,   ///< image + config          -> JFIF bytes
  kDecode,       ///< JFIF bytes              -> image
  kTranscode,    ///< JFIF bytes + config     -> re-encoded JFIF bytes
  kDeepnEncode,  ///< image + quality         -> bytes under the service's
                 ///  DeepN-JPEG table pair, IJG-scaled to `quality`
  kInfer,        ///< JFIF bytes              -> class probabilities from the
                 ///  service's model, run on the decoded image
};

inline constexpr int kNumRequestKinds = 5;

const char* kind_name(RequestKind kind);

struct Request {
  RequestKind kind = RequestKind::kEncode;
  image::Image image;               ///< kEncode / kDeepnEncode input
  std::vector<std::uint8_t> bytes;  ///< kDecode / kTranscode / kInfer input
  jpeg::EncoderConfig config;       ///< kEncode / kTranscode target config
  int quality = 50;                 ///< kDeepnEncode IJG scaling (50 = base table)

  /// kDeepnEncode only: name of a serve::TableRegistry tenant whose base
  /// table pair replaces the service-wide deepn pair. Empty = use the
  /// service-wide pair. An unknown name fails with a typed kError.
  std::string tenant;

  // Observability only — never digested, never serialized, never part of
  // the determinism contract. A front end (src/net) that already opened a
  // trace sets these so serve/codec spans attach under its root span;
  // when trace_id is 0 the service opens (and owns) its own trace.
  std::uint64_t trace_id = 0;
  std::uint32_t trace_parent = 0;
};

enum class Status : int {
  kOk = 0,
  kRejected,  ///< reject admission policy: queue was full at submission
  kShutdown,  ///< submitted after shutdown began
  kError,     ///< the handler threw; `error` carries the message
};

const char* status_name(Status status);

struct Response {
  Status status = Status::kOk;
  std::string error;  ///< set when status == kError / kRejected / kShutdown

  std::vector<std::uint8_t> bytes;  ///< kEncode / kTranscode / kDeepnEncode
  image::Image image;               ///< kDecode
  std::vector<float> probs;         ///< kInfer

  // Observability — never part of the determinism contract.
  bool cache_hit = false;
  int batch_size = 0;       ///< size of the micro-batch this request rode in
  double queue_us = 0.0;    ///< submission -> worker pickup
  double service_us = 0.0;  ///< worker pickup -> completion
};

}  // namespace dnj::serve
