// Content digests for the serving layer's caches and batching decisions.
//
// FNV-1a over explicit field serializations: fast, allocation-free, and
// stable for the life of a process (cache keys never leave the process).
// Keys pair an input digest with a config digest; both fold in enough
// structure (dimensions, kind tags, every EncoderConfig field including
// full table contents) that two requests with equal keys describe the same
// computation. 64+64 bits keyed per field keeps accidental collisions out
// of reach of any realistic working set; a collision would only ever
// surface a wrong-but-valid cached payload, and the byte-identity suite
// compares against uncached synchronous calls precisely to catch such
// wiring mistakes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serve/request.hpp"

namespace dnj::serve {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over a byte span, chained through `seed`.
std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t seed = kFnvOffset);

/// Digest of an image: dimensions, channel count and pixel payload.
std::uint64_t digest_image(const image::Image& img, std::uint64_t seed = kFnvOffset);

/// Digest of every field of an encoder config (tables included verbatim).
std::uint64_t digest_config(const jpeg::EncoderConfig& config,
                            std::uint64_t seed = kFnvOffset);

/// Digest of a quantization table's 64 natural-order steps.
std::uint64_t digest_table(const jpeg::QuantTable& table, std::uint64_t seed = kFnvOffset);

/// Cache key: (input digest, config digest). The request kind is folded
/// into the input digest, the kind-relevant parameters into the config
/// digest, so distinct operations can never alias.
struct CacheKey {
  std::uint64_t input = 0;
  std::uint64_t config = 0;

  bool operator==(const CacheKey& o) const { return input == o.input && config == o.config; }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // The members are already well-mixed digests; one multiply-fold keeps
    // the pair from cancelling.
    return static_cast<std::size_t>(k.input * kFnvPrime ^ k.config);
  }
};

/// The key under which a request's result is cached and against which
/// micro-batch compatibility is decided (equal `config` halves = the same
/// tables/settings, so a warm context stays warm across the batch).
CacheKey request_key(const Request& req);

/// The config half of request_key alone — all the submission path needs
/// (batching compatibility and admission never look at the input half).
/// O(1) in the payload size, so rejecting under overload stays O(1).
/// For kDeepnEncode this mixes the tenant *name*; the serving layer, which
/// can resolve the name against its registry, keys on the resolved table
/// contents instead (deepn_config_digest) so identical configurations
/// alias across tenants and registry generations.
std::uint64_t request_config_digest(const Request& req);

/// Config digest of a DeepN-quality encode: the digest of the base table
/// pair (service-wide or a tenant's TenantEntry::base_digest) folded with
/// the clamped quality. This is the digest the service shards, batches,
/// and caches kDeepnEncode requests on — pure content, no names, no
/// registry versions, so equal computations share warmth everywhere.
std::uint64_t deepn_config_digest(std::uint64_t tables_digest, int quality);

/// The input half of request_key alone: the (kind-seeded) digest of the
/// request payload. O(payload); workers compute it lazily, only when a
/// result-cache lookup will actually happen.
std::uint64_t request_input_digest(const Request& req);

/// True for kinds whose result payload is a byte vector worth caching
/// (encode, transcode, deepn-encode).
bool cacheable(RequestKind kind);

}  // namespace dnj::serve
