// Latency/throughput accounting for the serving layer.
//
// Workers record microsecond latencies into per-worker stats::Histogram
// instances (no cross-worker sharing on the hot path); stats() merges the
// per-worker histograms in worker-index order — integer counts make the
// merge order-free, the fixed order just keeps the code obviously
// deterministic — and extracts p50/p95/p99 with the histogram's
// interpolated streaming quantiles.
#pragma once

#include <cstdint>

#include "serve/request.hpp"
#include "stats/histogram.hpp"

namespace dnj::serve {

// Latency histogram geometry: 10 us resolution up to 250 ms. Latencies
// beyond the range saturate into the top bin (stats::Histogram edge-bin
// rule), so tail quantiles of a pathologically slow run read as ">= 250 ms"
// rather than garbage.
inline constexpr double kLatencyLoUs = 0.0;
inline constexpr double kLatencyHiUs = 250000.0;
inline constexpr int kLatencyBins = 25000;

inline stats::Histogram make_latency_histogram() {
  return stats::Histogram(kLatencyLoUs, kLatencyHiUs, kLatencyBins);
}

/// Quantile summary of one latency distribution, in microseconds.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;  ///< exact running max, not histogram-quantized
};

LatencySummary summarize(const stats::Histogram& h, double exact_max_us);

/// Point-in-time snapshot of a service's counters and latency quantiles.
/// Responses' payloads are deterministic; this snapshot is the one place
/// where scheduling (timing, batching luck, cache state) is allowed to
/// show.
struct ServiceStats {
  // Request lifecycle.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< kOk responses
  std::uint64_t errors = 0;     ///< kError responses
  std::uint64_t rejected = 0;   ///< kRejected (reject policy, queue full)
  std::uint64_t refused_shutdown = 0;  ///< kShutdown (submitted too late)
  std::uint64_t per_kind[kNumRequestKinds] = {};  ///< processed, by RequestKind

  // Result cache.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t table_cache_hits = 0;
  std::uint64_t table_cache_misses = 0;

  // Micro-batching.
  std::uint64_t batches = 0;           ///< pump iterations (>= 1 request each)
  std::uint64_t batched_requests = 0;  ///< requests that shared a batch (size > 1)
  std::uint64_t max_batch = 0;         ///< largest batch observed

  // Queue pressure.
  std::uint64_t queue_capacity = 0;
  std::uint64_t queue_high_water = 0;  ///< never exceeds queue_capacity

  // Context warmth (jpeg::pipeline::CodecContext::ReuseCounters deltas,
  // summed over workers): rebuilds of cached per-context state. Fewer
  // rebuilds per request = micro-batching doing its job.
  std::uint64_t ctx_huffman_builds = 0;
  std::uint64_t ctx_reciprocal_builds = 0;
  std::uint64_t ctx_quality_table_builds = 0;
  std::uint64_t ctx_decoder_builds = 0;  ///< decode-side Huffman table + LUT builds

  // Latency quantiles (SLO accounting).
  LatencySummary queue_wait;    ///< submission -> worker pickup
  LatencySummary service_time;  ///< worker pickup -> completion
  LatencySummary total;         ///< submission -> completion
};

}  // namespace dnj::serve
