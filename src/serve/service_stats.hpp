// Latency/throughput accounting for the serving layer.
//
// Workers record microsecond latencies into per-worker stats::Histogram
// instances (no cross-worker sharing on the hot path); stats() merges the
// per-worker histograms in worker-index order — integer counts make the
// merge order-free, the fixed order just keeps the code obviously
// deterministic — and extracts p50/p95/p99 with the histogram's
// interpolated streaming quantiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "stats/histogram.hpp"

namespace dnj::serve {

// Latency histogram geometry: 10 us resolution up to 250 ms. Latencies
// beyond the range saturate into the top bin (stats::Histogram edge-bin
// rule), so tail quantiles of a pathologically slow run read as ">= 250 ms"
// rather than garbage.
inline constexpr double kLatencyLoUs = 0.0;
inline constexpr double kLatencyHiUs = 250000.0;
inline constexpr int kLatencyBins = 25000;

inline stats::Histogram make_latency_histogram() {
  return stats::Histogram(kLatencyLoUs, kLatencyHiUs, kLatencyBins);
}

// Per-tenant histograms are 10x coarser (100 us resolution over the same
// range): every worker keeps one per named tenant, so the service-wide
// geometry (~200 KB a histogram) would turn "thousands of tenants" into
// gigabytes of bins. 100 us still resolves serving-scale quantiles.
inline constexpr int kTenantLatencyBins = 2500;

inline stats::Histogram make_tenant_latency_histogram() {
  return stats::Histogram(kLatencyLoUs, kLatencyHiUs, kTenantLatencyBins);
}

/// Quantile summary of one latency distribution, in microseconds.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;  ///< exact running max, not histogram-quantized
};

LatencySummary summarize(const stats::Histogram& h, double exact_max_us);

/// Counters and latency quantiles for one named registry tenant (requests
/// carrying an empty tenant name count only in the service-wide totals).
/// Merged across workers by stats(), sorted by name.
struct TenantStats {
  std::string name;
  std::uint64_t requests = 0;   ///< processed = completed + errors
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;         ///< result-cache hits
  std::uint64_t table_cache_hits = 0;   ///< scaled-table LRU hits
  std::uint64_t table_cache_misses = 0;
  std::uint64_t ctx_huffman_builds = 0;
  std::uint64_t ctx_reciprocal_builds = 0;
  std::uint64_t ctx_quality_table_builds = 0;
  std::uint64_t ctx_decoder_builds = 0;
  LatencySummary service_time;  ///< coarse geometry (kTenantLatencyBins)
};

/// Point-in-time snapshot of a service's counters and latency quantiles.
/// Responses' payloads are deterministic; this snapshot is the one place
/// where scheduling (timing, batching luck, cache state) is allowed to
/// show.
struct ServiceStats {
  // Request lifecycle.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< kOk responses
  std::uint64_t errors = 0;     ///< kError responses
  std::uint64_t rejected = 0;   ///< kRejected (reject policy, queue full)
  std::uint64_t refused_shutdown = 0;  ///< kShutdown (submitted too late)
  std::uint64_t per_kind[kNumRequestKinds] = {};  ///< processed, by RequestKind

  // Result cache. cache_bytes is the recorded payload total;
  // cache_quota_evictions count entries a tenant pushed out of its OWN
  // allotment (the fairness mechanism, disjoint from cache_evictions).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_quota_evictions = 0;
  std::uint64_t cache_bytes = 0;
  // Scaled-table LRUs (per worker since digest-affinity sharding; summed).
  std::uint64_t table_cache_hits = 0;
  std::uint64_t table_cache_misses = 0;

  // Micro-batching.
  std::uint64_t batches = 0;           ///< pump iterations (>= 1 request each)
  std::uint64_t batched_requests = 0;  ///< requests that shared a batch (size > 1)
  std::uint64_t max_batch = 0;         ///< largest batch observed

  // Queue pressure + digest-affinity sharding. queue_capacity is the
  // total across shards; steals count pops a worker served from a foreign
  // shard (stealing enabled, home shard empty).
  std::uint64_t queue_capacity = 0;
  std::uint64_t queue_high_water = 0;  ///< never exceeds queue_capacity
  std::uint64_t shard_count = 0;
  std::uint64_t steals = 0;

  // Context warmth (jpeg::pipeline::CodecContext::ReuseCounters deltas,
  // summed over workers): rebuilds of cached per-context state. Fewer
  // rebuilds per request = micro-batching doing its job.
  std::uint64_t ctx_huffman_builds = 0;
  std::uint64_t ctx_reciprocal_builds = 0;
  std::uint64_t ctx_quality_table_builds = 0;
  std::uint64_t ctx_decoder_builds = 0;  ///< decode-side Huffman table + LUT builds

  // Latency quantiles (SLO accounting).
  LatencySummary queue_wait;    ///< submission -> worker pickup
  LatencySummary service_time;  ///< worker pickup -> completion
  LatencySummary total;         ///< submission -> completion

  // Per-tenant breakdown (named registry tenants only), sorted by name.
  std::vector<TenantStats> tenants;
};

}  // namespace dnj::serve
