#include "serve/request.hpp"

namespace dnj::serve {

const char* kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kEncode: return "encode";
    case RequestKind::kDecode: return "decode";
    case RequestKind::kTranscode: return "transcode";
    case RequestKind::kDeepnEncode: return "deepn_encode";
    case RequestKind::kInfer: return "infer";
  }
  return "unknown";
}

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kShutdown: return "shutdown";
    case Status::kError: return "error";
  }
  return "unknown";
}

}  // namespace dnj::serve
