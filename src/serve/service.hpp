// TranscodeService — the asynchronous serving layer over the codec pipeline
// and the NN front end.
//
//   clients ──submit()──▶ consistent-hash ring ──▶ sharded MPMC queue ──▶ worker pumps
//               │           shard_of(config digest)   one sub-queue per shard    │
//               │ admission control:                  (pop home shard first,     │ one pump per worker, each
//               │   kBlock  — wait for space           steal fullest foreign     │ on its own thread-local
//               │   kReject — typed kRejected          shard when starving)      │ CodecContext (warm arenas,
//               ▼            response, immediately                              ├─▶ result LRU   (shared; byte + per-tenant quota accounting)
//        future<Response>                                                       ├─▶ table LRU    (per worker: DeepN pair, IJG-scaled per quality)
//                                                                               └─▶ per-worker latency histograms ──merge──▶ ServiceStats
//
// Scheduling: digest-affinity sharding. The submission path hashes the
// request's config digest onto a consistent-hash ring (kShardRingReplicas
// virtual points per shard) that maps it to a home shard; with
// shard_by_digest on there is one shard per worker, so every request
// stream with one configuration lands on one worker whose CodecContext
// caches (Huffman specs, reciprocal multipliers, scaled tables, LUT
// decoders) stay permanently warm for it. After popping a request, a pump
// opportunistically drains immediately-available *compatible* followers
// (same kind, same config digest) from the same shard up to `max_batch` —
// micro-batching; sharding makes those runs longer because a shard's
// sub-queue interleaves fewer distinct configs. A worker whose home shard
// is empty steals the head of the fullest foreign shard (config_.steal),
// trading warmth for utilization; nothing else changes hands.
//
// Multi-tenancy: a versioned TableRegistry (shared or service-private)
// maps tenant names to base table pairs + encoder options. A kDeepnEncode
// request naming a tenant pins that tenant's immutable snapshot at
// submission — concurrent re-registration can never mix table generations
// within a request — and is digested by resolved *content*, so identical
// configurations share shards, batches, and caches across tenant names.
// The shared result LRU enforces per-tenant byte quotas so one tenant
// cannot evict everyone else (see LruCache).
//
// Determinism contract (extends the codec/runtime contracts to serving):
// every response payload is bit-identical to the equivalent synchronous
// single-threaded call — execute() — regardless of worker count, sharding
// mode, stealing, batching decisions, cache hits, or arrival order. This
// holds because every handler is a pure function of the request plus the
// configuration snapshot it pinned: contexts only carry scratch state, the
// caches store deterministic functions of their keys, and the model is
// locked during each forward. Sharding and stealing are pure scheduling —
// they choose *where* a request runs, never what it computes.
// tests/test_serve.cpp pins the contract across worker counts {1, 2, 8},
// sharding on/off, stealing on/off, batching on/off, and cache warm/cold.
//
// Shutdown: shutdown() closes the queue (new submissions get a typed
// kShutdown response; blocked submitters wake with the same), lets the
// pumps drain every request already accepted, then joins the workers.
// Idempotent; the destructor calls it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "jpeg/quant.hpp"
#include "nn/layer.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/digest.hpp"
#include "serve/lru_cache.hpp"
#include "serve/registry.hpp"
#include "serve/request.hpp"
#include "serve/service_stats.hpp"
#include "serve/shard_queue.hpp"

namespace dnj::serve {

enum class AdmissionPolicy : int {
  kBlock = 0,  ///< submit() waits for queue space (backpressure by blocking)
  kReject,     ///< submit() returns a typed kRejected response when full
};

struct ServiceConfig {
  /// Fixed worker count (clamped to >= 1). Each worker owns one
  /// thread-local jpeg::pipeline::CodecContext for its whole lifetime.
  int workers = 2;

  /// Bounded submission-queue capacity (clamped to >= 1), split evenly
  /// across shards (rounded up). The queue never holds more requests than
  /// ServiceStats::queue_capacity — admission control handles overflow.
  std::size_t queue_capacity = 256;

  AdmissionPolicy admission = AdmissionPolicy::kBlock;

  /// Largest micro-batch a worker may drain per pop; 1 disables batching.
  int max_batch = 8;

  /// Digest-affinity sharding: one sub-queue per worker, requests routed
  /// by config digest so per-worker caches stay warm per configuration.
  /// Off = one shard (classic any-worker-pops-anything scheduling).
  /// Scheduling only — responses are bit-identical either way.
  bool shard_by_digest = true;

  /// Work stealing: a worker whose home shard is empty takes the head of
  /// the fullest foreign shard instead of idling. Only meaningful with
  /// shard_by_digest; trades cache warmth for utilization under skew.
  bool steal = true;

  /// Result-cache entries — encoded byte payloads keyed on
  /// (input digest, config digest). 0 disables the cache.
  std::size_t cache_capacity = 256;

  /// Result-cache byte ceiling across all entries (0 = entry count only).
  std::size_t cache_max_bytes = 0;

  /// Per-tenant result-cache byte quota (0 = none). Over-quota tenants
  /// evict their own least-recently-used entries, never other tenants'.
  /// A tenant whose TenantEntry carries a nonzero quota_bytes... shares
  /// this single cache-wide per-tenant cap (the registry quota is
  /// bookkeeping for operators; enforcement is uniform by design so the
  /// cache needs no registry lookups on the hot path).
  std::size_t tenant_quota_bytes = 0;

  /// Scaled-table cache entries for kDeepnEncode, per worker (one entry
  /// per distinct (table pair, quality)). 0 disables it (tables are then
  /// re-scaled per request).
  std::size_t table_cache_capacity = 16;

  /// The deployment's DeepN-JPEG table pair, the base that tenantless
  /// kDeepnEncode requests IJG-scale by their `quality`. Defaults to
  /// identity tables; real deployments install core::DeepNJpeg::design()
  /// output. Requests naming a registry tenant use that tenant's pair
  /// instead.
  jpeg::QuantTable deepn_luma;
  jpeg::QuantTable deepn_chroma;

  /// Tenant registry backing kDeepnEncode requests that name a tenant.
  /// Null = the service creates a private one (reachable via registry()).
  /// Share one registry across services to serve one coherent tenant set.
  std::shared_ptr<TableRegistry> registry;

  /// Model for kInfer requests (not owned; must outlive the service).
  /// Layer::forward is stateful, so the service serializes inference
  /// through an internal mutex. Null = kInfer requests fail with kError.
  nn::Layer* model = nullptr;

  /// Metrics registry this service publishes into. Null = the service
  /// creates a private one (reachable via metrics_registry()). Share one
  /// registry across services/servers to scrape one unified plane. The
  /// submission counters live *in* the registry (stats() reads them back),
  /// and a collector snapshot of everything else is registered here — so
  /// metrics_text() and ServiceStats can never disagree.
  std::shared_ptr<obs::Registry> metrics;
};

class TranscodeService {
 public:
  explicit TranscodeService(ServiceConfig config);
  ~TranscodeService();  ///< calls shutdown()

  TranscodeService(const TranscodeService&) = delete;
  TranscodeService& operator=(const TranscodeService&) = delete;

  /// Submits a request. The returned future is always eventually fulfilled:
  /// with the result, a typed kRejected/kShutdown refusal, or a kError
  /// response when the handler threw (or the request named an unknown
  /// tenant). Never throws on queue pressure.
  std::future<Response> submit(Request req);

  /// Completion callback alternative to the future form — what an event
  /// loop wants (src/net's server): no thread ever blocks on a get().
  /// Exactly-once semantics match the future form: `done` is always
  /// invoked — with the result, a typed refusal, or kError. It runs on
  /// whichever thread completes the request: a worker pump for accepted
  /// work, the *submitting* thread for immediate refusals (rejection,
  /// shutdown) — so it must be safe to call from both and must not block
  /// or throw (a throw is swallowed to protect the pump; the response is
  /// then lost).
  using Callback = std::function<void(Response)>;
  void submit(Request req, Callback done);

  /// The synchronous reference path: runs `req` immediately on the calling
  /// thread — no queue, no batching, no caches (tenant names still resolve
  /// against the registry, pinned at this call). The determinism contract
  /// says submit()'s payloads equal execute()'s, bit for bit.
  Response execute(const Request& req);

  /// Graceful shutdown: refuse new work, drain accepted work, join
  /// workers. Idempotent and safe to race with submit().
  void shutdown();

  /// Point-in-time counters + merged latency quantiles. Callable at any
  /// time, including after shutdown. Ordering contract: once a request's
  /// future has been fulfilled, that request is reflected in the lifecycle
  /// counters, per-kind counts, batch counters, and latency histograms.
  /// Only the context-warmth deltas settle at batch granularity (final
  /// once shutdown() returned).
  ServiceStats stats() const;

  const ServiceConfig& config() const { return config_; }

  /// The registry kDeepnEncode tenant names resolve against — the one from
  /// ServiceConfig, or the service-private one when none was given.
  const std::shared_ptr<TableRegistry>& registry() const { return config_.registry; }

  /// The metrics registry this service publishes into — the one from
  /// ServiceConfig, or the service-private one when none was given.
  const std::shared_ptr<obs::Registry>& metrics_registry() const {
    return config_.metrics;
  }

 private:
  struct Job;
  struct WorkerStats;
  /// What run() observed that the Response does not carry (table-LRU
  /// traffic, attributed per request/tenant by process_batch).
  struct RunInfo {
    bool table_lookup = false;
    bool table_hit = false;
  };
  void pump(int worker_id);
  void process_batch(std::vector<Job>& batch, WorkerStats& ws, int worker_id);
  Response run(const Request& req, const TenantEntry* tenant, int worker_id,
               RunInfo* info);
  jpeg::EncoderConfig deepn_config(int quality, const TenantEntry* tenant,
                                   int worker_id, RunInfo* info);
  std::size_t shard_of(std::uint64_t config_digest) const;
  void collect_metrics(std::vector<obs::Sample>& out) const;
  void submit_job(Job job);
  static void fulfill(Job&& job, Response&& resp);
  void refuse(Job&& job, Status status, std::string why);

  ServiceConfig config_;
  std::uint64_t deepn_tables_digest_ = 0;
  std::size_t shards_ = 1;
  /// Consistent-hash ring: (point, shard), sorted by point. Virtual nodes
  /// smooth the digest -> shard split; consistent hashing keeps most
  /// digests' homes stable if the shard count ever changes generation to
  /// generation (services today fix it at construction, but cache-warmth
  /// math should not depend on that).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;

  std::unique_ptr<ShardedQueue<Job>> queue_;
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  std::unique_ptr<runtime::ThreadPool> workers_;  ///< null once shut down
  std::mutex shutdown_mutex_;

  LruCache<CacheKey, std::vector<std::uint8_t>, CacheKeyHash> result_cache_;
  struct TablePair {
    jpeg::QuantTable luma, chroma;
  };
  /// One scaled-table LRU per worker (indexed by worker id): with digest
  /// affinity each worker only ever hosts its shard's configurations, so
  /// a small per-worker cache outperforms one shared cache under
  /// multi-tenant load — and sheds the cross-worker lock traffic.
  std::vector<std::unique_ptr<LruCache<CacheKey, TablePair, CacheKeyHash>>> table_caches_;

  std::mutex model_mutex_;

  // Submission-side counters (completion-side ones live in WorkerStats).
  // They are obs::Registry instruments — the registry is the single source
  // of truth; stats() reads the same counters the exporters render.
  // Stable addresses for the registry's lifetime, cached here so the hot
  // path is one relaxed fetch_add with no registry lookups.
  obs::Counter* submitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* refused_shutdown_ = nullptr;
  obs::Counter* submit_errors_ = nullptr;  ///< unknown-tenant refusals
  std::uint64_t metrics_collector_ = 0;    ///< removed before members die
};

}  // namespace dnj::serve
