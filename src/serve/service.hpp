// TranscodeService — the asynchronous serving layer over the codec pipeline
// and the NN front end.
//
//   clients ──submit()──▶ bounded MPMC queue ──pop / pop_while──▶ worker pumps
//               │                                    │
//               │ admission control:                 │ one pump per worker, each
//               │   kBlock  — wait for space         │ on its own thread-local
//               │   kReject — typed kRejected        │ CodecContext (warm arenas,
//               ▼            response, immediately   │ cached tables)
//        future<Response>                            ├─▶ result LRU   (input digest, config digest)
//                                                    ├─▶ table LRU    (DeepN table pair, IJG-scaled per quality)
//                                                    └─▶ per-worker latency histograms ──merge──▶ ServiceStats
//
// Scheduling: a fixed worker set — a private runtime::ThreadPool whose
// workers each run one long-lived "pump" task — pops requests from the
// bounded submission queue. After popping a request, a pump opportunistically
// drains immediately-available *compatible* followers (same kind, same
// config digest) up to `max_batch` — micro-batching. Batched requests are
// processed back to back on the same warm context, so the per-context
// caches (static Huffman tables, reciprocal multipliers, quality tables)
// are derived once per batch instead of once per request; batching changes
// which context state is reused, never what any request computes.
//
// Determinism contract (extends the codec/runtime contracts to serving):
// every response payload is bit-identical to the equivalent synchronous
// single-threaded call — execute() — regardless of worker count, batching
// decisions, cache hits, or arrival order. This holds because every handler
// is a pure function of the request plus immutable service configuration:
// contexts only carry scratch state, the caches store deterministic
// functions of their keys, and the model is locked during each forward.
// tests/test_serve.cpp pins the contract across worker counts {1, 2, 8},
// batching on/off, and cache warm/cold.
//
// Shutdown: shutdown() closes the queue (new submissions get a typed
// kShutdown response; blocked submitters wake with the same), lets the
// pumps drain every request already accepted, then joins the workers.
// Idempotent; the destructor calls it.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "jpeg/quant.hpp"
#include "nn/layer.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/digest.hpp"
#include "serve/lru_cache.hpp"
#include "serve/request.hpp"
#include "serve/service_stats.hpp"

namespace dnj::serve {

enum class AdmissionPolicy : int {
  kBlock = 0,  ///< submit() waits for queue space (backpressure by blocking)
  kReject,     ///< submit() returns a typed kRejected response when full
};

struct ServiceConfig {
  /// Fixed worker count (clamped to >= 1). Each worker owns one
  /// thread-local jpeg::pipeline::CodecContext for its whole lifetime.
  int workers = 2;

  /// Bounded submission-queue capacity (clamped to >= 1). The queue never
  /// holds more requests than this — admission control handles overflow.
  std::size_t queue_capacity = 256;

  AdmissionPolicy admission = AdmissionPolicy::kBlock;

  /// Largest micro-batch a worker may drain per pop; 1 disables batching.
  int max_batch = 8;

  /// Result-cache entries — encoded byte payloads keyed on
  /// (input digest, config digest). 0 disables the cache.
  std::size_t cache_capacity = 256;

  /// Scaled-table cache entries for kDeepnEncode (one entry per distinct
  /// quality). 0 disables it (tables are then re-scaled per request).
  std::size_t table_cache_capacity = 16;

  /// The deployment's DeepN-JPEG table pair, the base that kDeepnEncode
  /// requests IJG-scale by their `quality`. Defaults to identity tables;
  /// real deployments install core::DeepNJpeg::design() output.
  jpeg::QuantTable deepn_luma;
  jpeg::QuantTable deepn_chroma;

  /// Model for kInfer requests (not owned; must outlive the service).
  /// Layer::forward is stateful, so the service serializes inference
  /// through an internal mutex. Null = kInfer requests fail with kError.
  nn::Layer* model = nullptr;
};

class TranscodeService {
 public:
  explicit TranscodeService(ServiceConfig config);
  ~TranscodeService();  ///< calls shutdown()

  TranscodeService(const TranscodeService&) = delete;
  TranscodeService& operator=(const TranscodeService&) = delete;

  /// Submits a request. The returned future is always eventually fulfilled:
  /// with the result, a typed kRejected/kShutdown refusal, or a kError
  /// response when the handler threw. Never throws on queue pressure.
  std::future<Response> submit(Request req);

  /// Completion callback alternative to the future form — what an event
  /// loop wants (src/net's server): no thread ever blocks on a get().
  /// Exactly-once semantics match the future form: `done` is always
  /// invoked — with the result, a typed refusal, or kError. It runs on
  /// whichever thread completes the request: a worker pump for accepted
  /// work, the *submitting* thread for immediate refusals (rejection,
  /// shutdown) — so it must be safe to call from both and must not block
  /// or throw (a throw is swallowed to protect the pump; the response is
  /// then lost).
  using Callback = std::function<void(Response)>;
  void submit(Request req, Callback done);

  /// The synchronous reference path: runs `req` immediately on the calling
  /// thread — no queue, no batching, no caches. The determinism contract
  /// says submit()'s payloads equal execute()'s, bit for bit.
  Response execute(const Request& req);

  /// Graceful shutdown: refuse new work, drain accepted work, join
  /// workers. Idempotent and safe to race with submit().
  void shutdown();

  /// Point-in-time counters + merged latency quantiles. Callable at any
  /// time, including after shutdown. Ordering contract: once a request's
  /// future has been fulfilled, that request is reflected in the lifecycle
  /// counters, per-kind counts, batch counters, and latency histograms.
  /// Only the context-warmth deltas settle at batch granularity (final
  /// once shutdown() returned).
  ServiceStats stats() const;

  const ServiceConfig& config() const { return config_; }

 private:
  struct Job;
  struct WorkerStats;

  void pump(int worker_id);
  void process_batch(std::vector<Job>& batch, WorkerStats& ws);
  Response run(const Request& req, bool use_table_cache);
  jpeg::EncoderConfig deepn_config(int quality, bool use_table_cache);
  void submit_job(Job job);
  static void fulfill(Job&& job, Response&& resp);
  static void refuse(Job&& job, Status status, const char* why);

  ServiceConfig config_;
  std::uint64_t deepn_tables_digest_ = 0;

  std::unique_ptr<runtime::MpmcQueue<Job>> queue_;
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  std::unique_ptr<runtime::ThreadPool> workers_;  ///< null once shut down
  std::mutex shutdown_mutex_;

  LruCache<CacheKey, std::vector<std::uint8_t>, CacheKeyHash> result_cache_;
  struct TablePair {
    jpeg::QuantTable luma, chroma;
  };
  LruCache<CacheKey, TablePair, CacheKeyHash> table_cache_;

  std::mutex model_mutex_;

  // Submission-side counters (completion-side ones live in WorkerStats).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> refused_shutdown_{0};
};

}  // namespace dnj::serve
