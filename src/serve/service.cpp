#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>
#include <utility>

#include "api/convert.hpp"
#include "api/session.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/decoder.hpp"
#include "nn/trainer.hpp"
#include "obs/trace.hpp"

namespace dnj::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Steady-clock time point -> the tracer's nanosecond timeline (both are
/// steady_clock, so span timestamps and latency math share one clock).
std::uint64_t to_trace_ns(Clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch())
          .count());
}

/// Virtual nodes per shard on the consistent-hash ring. 16 points per
/// shard keeps the largest/smallest shard arc within ~2x of each other for
/// any realistic shard count — plenty, since workers rebalance residual
/// skew by stealing.
constexpr std::uint32_t kShardRingReplicas = 16;

}  // namespace

LatencySummary summarize(const stats::Histogram& h, double exact_max_us) {
  LatencySummary s;
  s.count = h.total();
  if (s.count == 0) return s;
  s.p50_us = h.quantile(0.50);
  s.p95_us = h.quantile(0.95);
  s.p99_us = h.quantile(0.99);
  s.max_us = exact_max_us;
  return s;
}

/// One queued request: the request itself, its completion (a promise OR a
/// callback — never both), and everything the worker needs without
/// re-deriving it (cache key, pinned tenant snapshot, submission
/// timestamp).
struct TranscodeService::Job {
  Request req;
  std::promise<Response> promise;
  Callback done;  ///< when set, completion goes here instead of the promise
  CacheKey key;
  bool cacheable = false;
  /// Pinned at submission: the tenant configuration this request will run
  /// under, whatever the registry does meanwhile. Null for tenantless
  /// requests.
  std::shared_ptr<const TenantEntry> tenant;
  std::uint64_t tenant_hash = 0;  ///< fnv1a(tenant name); 0 = tenantless
  Clock::time_point enqueue;

  // Observability only — which trace this job records spans into (0 =
  // unsampled), the root span its children attach to, and whether the
  // service opened the trace itself (then it also records the root; a net
  // front end that opened the trace records its own root instead).
  std::uint64_t trace_id = 0;
  std::uint32_t trace_parent = 0;
  bool trace_owned = false;
};

/// Per-worker accounting. Each worker mutates only its own instance, under
/// its own mutex (uncontended in steady state — stats() is the only other
/// reader), which keeps the hot path lock-cheap and the whole structure
/// TSan-clean.
struct TranscodeService::WorkerStats {
  /// Per-tenant slice of this worker's counters, keyed by tenant name.
  /// std::map so stats() merges in sorted order for free.
  struct TenantCounters {
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t table_hits = 0;
    std::uint64_t table_misses = 0;
    jpeg::pipeline::CodecContext::ReuseCounters ctx;
    stats::Histogram service_time = make_tenant_latency_histogram();
    double service_max_us = 0.0;
  };

  std::mutex mutex;
  stats::Histogram queue_wait = make_latency_histogram();
  stats::Histogram service_time = make_latency_histogram();
  stats::Histogram total = make_latency_histogram();
  double queue_wait_max_us = 0.0;
  double service_time_max_us = 0.0;
  double total_max_us = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t per_kind[kNumRequestKinds] = {0, 0, 0, 0, 0};
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t max_batch = 0;
  jpeg::pipeline::CodecContext::ReuseCounters ctx_deltas;
  std::map<std::string, TenantCounters> tenants;
};

TranscodeService::TranscodeService(ServiceConfig config)
    : config_(std::move(config)),
      result_cache_(config_.cache_capacity, config_.cache_max_bytes,
                    config_.tenant_quota_bytes) {
  config_.workers = std::max(1, config_.workers);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.max_batch = std::max(1, config_.max_batch);
  if (!config_.registry) config_.registry = std::make_shared<TableRegistry>();
  if (!config_.metrics) config_.metrics = std::make_shared<obs::Registry>();
  // The submission counters ARE registry instruments (stats() reads them
  // back), so the exporters and ServiceStats share one source of truth.
  submitted_ = &config_.metrics->counter("serve_requests_submitted_total");
  rejected_ = &config_.metrics->counter("serve_requests_rejected_total");
  refused_shutdown_ =
      &config_.metrics->counter("serve_requests_refused_shutdown_total");
  submit_errors_ = &config_.metrics->counter("serve_submit_errors_total");
  deepn_tables_digest_ =
      digest_table(config_.deepn_chroma, digest_table(config_.deepn_luma));

  // One shard per worker under digest affinity — the point is a 1:1
  // shard->home-worker mapping, so "same digest" means "same warm context".
  shards_ = config_.shard_by_digest ? static_cast<std::size_t>(config_.workers) : 1;
  ring_.reserve(shards_ * kShardRingReplicas);
  for (std::uint32_t s = 0; s < shards_; ++s) {
    for (std::uint32_t r = 0; r < kShardRingReplicas; ++r) {
      const std::uint32_t point[2] = {s, r};
      ring_.emplace_back(fnv1a(point, sizeof(point)), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  queue_ = std::make_unique<ShardedQueue<Job>>(shards_, config_.queue_capacity);
  worker_stats_.reserve(static_cast<std::size_t>(config_.workers));
  table_caches_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    worker_stats_.push_back(std::make_unique<WorkerStats>());
    // Per-worker table LRUs: digest affinity means a worker only hosts its
    // shard's configurations, so small private caches hold exactly the
    // right working set — with zero cross-worker lock traffic.
    table_caches_.push_back(std::make_unique<LruCache<CacheKey, TablePair, CacheKeyHash>>(
        config_.table_cache_capacity));
  }

  // A private pool, not ThreadPool::global(): pumps occupy their worker for
  // the service's whole lifetime, which would starve the shared pool's
  // parallel loops. Each pump is one submitted task; with exactly as many
  // workers as pumps every worker runs exactly one pump, and the pool
  // destructor's drain guarantee is what shutdown() leans on.
  workers_ = std::make_unique<runtime::ThreadPool>(static_cast<unsigned>(config_.workers));
  for (int w = 0; w < config_.workers; ++w)
    workers_->submit([this, w] { pump(w); });

  // Registered last: the collector snapshots stats(), which needs every
  // member above. remove_collector in the destructor blocks until any
  // in-flight gather() returns, so the captured `this` can never dangle
  // even when the registry shared_ptr outlives this service.
  metrics_collector_ = config_.metrics->add_collector(
      [this](std::vector<obs::Sample>& out) { collect_metrics(out); });
}

TranscodeService::~TranscodeService() {
  config_.metrics->remove_collector(metrics_collector_);
  shutdown();
}

void TranscodeService::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  queue_->close();   // refuse new work, wake blocked submitters and pumps
  workers_.reset();  // pumps drain the accepted backlog, then workers join
}

std::future<Response> TranscodeService::submit(Request req) {
  Job job;
  job.req = std::move(req);
  std::future<Response> future = job.promise.get_future();
  submit_job(std::move(job));
  return future;
}

void TranscodeService::submit(Request req, Callback done) {
  Job job;
  job.req = std::move(req);
  job.done = std::move(done);
  submit_job(std::move(job));
}

std::size_t TranscodeService::shard_of(std::uint64_t config_digest) const {
  if (shards_ == 1) return 0;
  // First ring point clockwise of the digest; wrap past the top.
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(config_digest, std::uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

void TranscodeService::submit_job(Job job) {
  submitted_->inc();
  // Adopt the front end's trace, or open one here for in-process callers.
  // Pure observability: the sampling decision never feeds into admission,
  // sharding, or batching.
  job.trace_id = job.req.trace_id;
  job.trace_parent = job.req.trace_parent;
  if (job.trace_id == 0) {
    obs::Tracer& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
      job.trace_id = tracer.start_trace();
      if (job.trace_id != 0) {
        job.trace_parent = tracer.next_span_id();
        job.trace_owned = true;
      }
    }
  }
  job.cacheable = cacheable(job.req.kind) && result_cache_.enabled();
  // Only the config half of the key here: admission, sharding and batching
  // never read the input half, and hashing the payload on the submission
  // path would make rejection under overload O(payload). Workers derive
  // the input half lazily when a cache lookup actually happens.
  if (job.req.kind == RequestKind::kDeepnEncode) {
    // Resolve the tenant now — pinning the snapshot at submission is the
    // registry's consistency contract — and digest by resolved CONTENT, so
    // two tenants (or registry generations) with identical tables share
    // shards, batches and cache entries.
    std::uint64_t tables_digest = deepn_tables_digest_;
    if (!job.req.tenant.empty()) {
      job.tenant = config_.registry->find(job.req.tenant);
      if (!job.tenant) {
        submit_errors_->inc();
        refuse(std::move(job), Status::kError,
               "unknown tenant: " + job.req.tenant);
        return;
      }
      tables_digest = job.tenant->base_digest;
      job.tenant_hash = fnv1a(job.req.tenant.data(), job.req.tenant.size());
    }
    job.key.config = deepn_config_digest(tables_digest, job.req.quality);
  } else {
    job.key.config = request_config_digest(job.req);
  }
  job.enqueue = Clock::now();

  const std::size_t shard = shard_of(job.key.config);
  const bool accepted = config_.admission == AdmissionPolicy::kReject
                            ? queue_->try_push(job, shard)
                            : queue_->push(job, shard);
  if (!accepted) {
    // try_push fails on full or closed; push only on closed. Closed wins
    // the tie-break so shutdown refusals are always typed kShutdown.
    if (queue_->closed()) {
      refused_shutdown_->inc();
      refuse(std::move(job), Status::kShutdown, "service is shut down");
    } else {
      rejected_->inc();
      refuse(std::move(job), Status::kRejected, "submission queue full");
    }
  }
}

void TranscodeService::fulfill(Job&& job, Response&& resp) {
  if (job.done) {
    // The callback contract says "must not throw"; enforcing it here keeps
    // a misbehaving callback from unwinding a pump (which would violate
    // the pool's no-throw task contract and take the process down).
    try {
      job.done(std::move(resp));
    } catch (...) {
    }
  } else {
    job.promise.set_value(std::move(resp));
  }
}

void TranscodeService::refuse(Job&& job, Status status, std::string why) {
  Response r;
  r.status = status;
  r.error = std::move(why);
  fulfill(std::move(job), std::move(r));
}

void TranscodeService::pump(int worker_id) {
  WorkerStats& ws = *worker_stats_[static_cast<std::size_t>(worker_id)];
  const std::size_t home = static_cast<std::size_t>(worker_id) % shards_;
  const bool steal = config_.steal && shards_ > 1;
  std::vector<Job> batch;
  Job first;
  std::size_t from = home;
  while (queue_->pop(home, steal, first, &from)) {
    batch.clear();
    batch.push_back(std::move(first));
    if (config_.max_batch > 1) {
      // Batch followers come from the shard the head came from — possibly
      // a stolen one; digest purity of the batch is what matters, not
      // whose shard it was.
      const RequestKind kind = batch[0].req.kind;
      const std::uint64_t cfg = batch[0].key.config;
      queue_->pop_while(
          from,
          [kind, cfg](const Job& j) {
            return j.req.kind == kind && j.key.config == cfg;
          },
          static_cast<std::size_t>(config_.max_batch) - 1, batch);
    }
    process_batch(batch, ws, worker_id);
  }
}

void TranscodeService::process_batch(std::vector<Job>& batch, WorkerStats& ws,
                                     int worker_id) {
  // Stats-ordering contract: by the time a future is fulfilled, its batch
  // and its own lifecycle counters/latencies are visible to stats(). Hence
  // batch-level counters go in at assembly, per-request counters right
  // before each set_value. Context-warmth deltas are only knowable after
  // the batch ran; they settle when the batch finishes (final once
  // shutdown() returned). The per-request lock is uncontended in steady
  // state — stats() is the only other party that ever takes it.
  {
    std::lock_guard<std::mutex> lock(ws.mutex);
    ++ws.batches;
    if (batch.size() > 1) ws.batched_requests += batch.size();
    ws.max_batch = std::max<std::uint64_t>(ws.max_batch, batch.size());
  }

  // The pump thread's context persists across batches; counters are read
  // before/after so the stats report rebuilds attributable to this batch.
  const jpeg::pipeline::CodecContext::ReuseCounters before =
      jpeg::pipeline::thread_codec_context().reuse_counters();

  for (Job& job : batch) {
    const Clock::time_point picked = Clock::now();
    // Install the job's trace for this thread: codec-internal spans attach
    // under it without any id plumbing through run(). The queue-wait span
    // started on the submitting thread, so it is recorded with explicit
    // endpoints rather than RAII.
    obs::TraceScope trace(job.trace_id, job.trace_parent);
    obs::record_span(job.trace_id, job.trace_parent, obs::Stage::kQueueWait,
                     to_trace_ns(job.enqueue), to_trace_ns(picked));
    Response resp;
    RunInfo info;
    {
      obs::Span batch_span(obs::Stage::kBatch,
                           static_cast<std::uint64_t>(batch.size()));
      bool hit = false;
      if (job.cacheable) {
        obs::Span probe(obs::Stage::kCacheProbe);
        job.key.input = request_input_digest(job.req);
        hit = result_cache_.get(job.key, &resp.bytes);
      }
      if (hit) {
        resp.cache_hit = true;
      } else {
        resp = run(job.req, job.tenant.get(), worker_id, &info);
        if (job.cacheable && resp.status == Status::kOk)
          result_cache_.put(job.key, resp.bytes, resp.bytes.size(), job.tenant_hash);
      }
    }
    const Clock::time_point done = Clock::now();
    // In-process submissions have no front end to close the root span;
    // the service owns the trace and records the root here.
    if (job.trace_owned)
      obs::record_span_as(job.trace_id, job.trace_parent, 0, obs::Stage::kRequest,
                          to_trace_ns(job.enqueue), to_trace_ns(done),
                          static_cast<std::uint64_t>(job.req.kind));
    resp.batch_size = static_cast<int>(batch.size());
    resp.queue_us = us_between(job.enqueue, picked);
    resp.service_us = us_between(picked, done);
    {
      std::lock_guard<std::mutex> lock(ws.mutex);
      const double total_us = us_between(job.enqueue, done);
      ws.queue_wait.add(resp.queue_us);
      ws.service_time.add(resp.service_us);
      ws.total.add(total_us);
      ws.queue_wait_max_us = std::max(ws.queue_wait_max_us, resp.queue_us);
      ws.service_time_max_us = std::max(ws.service_time_max_us, resp.service_us);
      ws.total_max_us = std::max(ws.total_max_us, total_us);
      ++ws.per_kind[static_cast<int>(job.req.kind)];
      if (resp.status == Status::kOk) ++ws.completed; else ++ws.errors;
      if (resp.cache_hit) ++ws.cache_hits;
      if (job.tenant) {
        WorkerStats::TenantCounters& tc = ws.tenants[job.tenant->name];
        ++tc.requests;
        if (resp.status == Status::kOk) ++tc.completed; else ++tc.errors;
        if (resp.cache_hit) ++tc.cache_hits;
        if (info.table_lookup) ++(info.table_hit ? tc.table_hits : tc.table_misses);
        tc.service_time.add(resp.service_us);
        tc.service_max_us = std::max(tc.service_max_us, resp.service_us);
      }
    }
    fulfill(std::move(job), std::move(resp));
  }

  const jpeg::pipeline::CodecContext::ReuseCounters after =
      jpeg::pipeline::thread_codec_context().reuse_counters();
  jpeg::pipeline::CodecContext::ReuseCounters delta;
  delta.huffman_builds = after.huffman_builds - before.huffman_builds;
  delta.reciprocal_builds = after.reciprocal_builds - before.reciprocal_builds;
  delta.quality_table_builds = after.quality_table_builds - before.quality_table_builds;
  delta.huffman_decoder_builds =
      after.huffman_decoder_builds - before.huffman_decoder_builds;
  std::lock_guard<std::mutex> lock(ws.mutex);
  ws.ctx_deltas.huffman_builds += delta.huffman_builds;
  ws.ctx_deltas.reciprocal_builds += delta.reciprocal_builds;
  ws.ctx_deltas.quality_table_builds += delta.quality_table_builds;
  ws.ctx_deltas.huffman_decoder_builds += delta.huffman_decoder_builds;
  // Context rebuilds are measurable only per batch; a batch is digest-pure,
  // so attributing its delta to the head request's tenant is exact whenever
  // the batch is single-tenant and the head's cache hits hide no rebuild —
  // close enough for a warmth signal, and documented as batch-granular.
  if (!batch.empty() && batch[0].tenant) {
    WorkerStats::TenantCounters& tc = ws.tenants[batch[0].tenant->name];
    tc.ctx.huffman_builds += delta.huffman_builds;
    tc.ctx.reciprocal_builds += delta.reciprocal_builds;
    tc.ctx.quality_table_builds += delta.quality_table_builds;
    tc.ctx.huffman_decoder_builds += delta.huffman_decoder_builds;
  }
}

namespace {

/// Folds a façade status into a Response: any non-ok api status becomes a
/// typed kError with the façade's message (the serve taxonomy's catch-all
/// for handler failures — exactly what the pre-façade exception path
/// produced, message for message).
bool fold_status(const api::Status& status, Response& r) {
  if (status.ok()) return true;
  r = Response{};
  r.status = Status::kError;
  r.error = status.message();
  return false;
}

}  // namespace

Response TranscodeService::run(const Request& req, const TenantEntry* tenant,
                               int worker_id, RunInfo* info) {
  // The codec request kinds run through the public façade (dnj::api) —
  // the service is the façade's first in-tree consumer, so the boundary
  // contract (typed statuses in, bit-identical payloads out) is exercised
  // by every serving test. Session binds codec work to this worker
  // thread's codec context, the same warm arenas the direct calls used;
  // payloads are byte-identical to the pre-façade implementation. One
  // deliberate tightening rides along: the façade validates options, so a
  // request whose config carries quality outside [1, 100] (which raw
  // jpeg::encode silently clamps) now gets a typed kError instead of
  // clamped bytes. execute() shares this path, so the submit()==execute()
  // determinism contract is unaffected.
  static thread_local api::Session session;
  const api::Codec codec = session.codec();
  Response r;
  try {
    switch (req.kind) {
      case RequestKind::kEncode: {
        api::Result<std::vector<std::uint8_t>> res =
            codec.encode(req.image.view(), api::detail::from_config(req.config));
        if (fold_status(res.status(), r)) r.bytes = res.take();
        break;
      }
      case RequestKind::kDecode: {
        api::Result<api::DecodedImage> res = codec.decode(req.bytes);
        if (fold_status(res.status(), r)) {
          api::DecodedImage img = res.take();
          r.image = image::Image(img.width, img.height, img.channels,
                                 std::move(img.pixels));
        }
        break;
      }
      case RequestKind::kTranscode: {
        api::Result<std::vector<std::uint8_t>> res =
            codec.transcode(req.bytes, api::detail::from_config(req.config));
        if (fold_status(res.status(), r)) r.bytes = res.take();
        break;
      }
      case RequestKind::kDeepnEncode: {
        api::Result<std::vector<std::uint8_t>> res = codec.encode(
            req.image.view(),
            api::detail::from_config(
                deepn_config(req.quality, tenant, worker_id, info)));
        if (fold_status(res.status(), r)) r.bytes = res.take();
        break;
      }
      case RequestKind::kInfer: {
        if (!config_.model)
          throw std::runtime_error("kInfer request but no model configured");
        const image::Image img =
            jpeg::decode(req.bytes, jpeg::pipeline::thread_codec_context());
        // Layer::forward caches activations for backward, so inference is
        // serialized; the output is a pure function of (weights, image),
        // which keeps the determinism contract intact.
        std::lock_guard<std::mutex> lock(model_mutex_);
        obs::Span span(obs::Stage::kInfer);
        r.probs = nn::predict_probs(*config_.model, img);
        break;
      }
    }
  } catch (const std::exception& e) {
    r = Response{};
    r.status = Status::kError;
    r.error = e.what();
  } catch (...) {
    // A non-std exception (a user-supplied model can throw anything) must
    // not unwind the pump — that would break the always-fulfilled future
    // guarantee and terminate the process via the pool's no-throw contract.
    r = Response{};
    r.status = Status::kError;
    r.error = "handler threw a non-std exception";
  }
  return r;
}

jpeg::EncoderConfig TranscodeService::deepn_config(int quality,
                                                   const TenantEntry* tenant,
                                                   int worker_id, RunInfo* info) {
  quality = std::clamp(quality, 1, 100);
  const jpeg::QuantTable& base_luma =
      tenant ? tenant->base.luma_table : config_.deepn_luma;
  const jpeg::QuantTable& base_chroma =
      tenant ? tenant->base.chroma_table : config_.deepn_chroma;
  const std::uint64_t tables_digest =
      tenant ? tenant->base_digest : deepn_tables_digest_;

  TablePair pair;
  // worker_id < 0 = the execute() reference path: deliberately cache-free.
  LruCache<CacheKey, TablePair, CacheKeyHash>* cache =
      worker_id >= 0 ? table_caches_[static_cast<std::size_t>(worker_id)].get()
                     : nullptr;
  const CacheKey key{tables_digest, static_cast<std::uint64_t>(quality)};
  bool hit = false;
  if (cache != nullptr && cache->enabled()) {
    if (info != nullptr) info->table_lookup = true;
    hit = cache->get(key, &pair);
    if (info != nullptr) info->table_hit = hit;
  }
  if (!hit) {
    pair.luma = base_luma.scaled(quality);
    pair.chroma = base_chroma.scaled(quality);
    if (cache != nullptr) cache->put(key, pair);
  }

  // A tenant's entry carries its full encoder configuration — subsampling,
  // Huffman optimization, restart interval, comment all honored; only the
  // tables are replaced by their quality-scaled versions. The tenantless
  // path keeps its historical shape (4:4:4, defaults elsewhere).
  jpeg::EncoderConfig cfg;
  if (tenant != nullptr) cfg = tenant->base;
  else cfg.subsampling = jpeg::Subsampling::k444;
  cfg.use_custom_tables = true;
  cfg.luma_table = pair.luma;
  cfg.chroma_table = pair.chroma;
  return cfg;
}

Response TranscodeService::execute(const Request& req) {
  // Reference path: same handlers, same thread-local context mechanism,
  // but no queue, no batching, and — deliberately — no caches (the table
  // cache included), so cache correctness is testable by comparing
  // submit() against execute(). Tenant names resolve against the same
  // registry, pinned for the duration of this call.
  const TenantEntry* tenant = nullptr;
  std::shared_ptr<const TenantEntry> pin;
  if (req.kind == RequestKind::kDeepnEncode && !req.tenant.empty()) {
    pin = config_.registry->find(req.tenant);
    if (!pin) {
      Response r;
      r.status = Status::kError;
      r.error = "unknown tenant: " + req.tenant;
      return r;
    }
    tenant = pin.get();
  }
  return run(req, tenant, /*worker_id=*/-1, nullptr);
}

ServiceStats TranscodeService::stats() const {
  ServiceStats s;
  s.submitted = submitted_->value();
  s.rejected = rejected_->value();
  s.refused_shutdown = refused_shutdown_->value();
  s.queue_capacity = queue_->capacity();
  s.queue_high_water = queue_->high_water();
  s.shard_count = queue_->shard_count();
  s.steals = queue_->steals();
  s.cache_hits = result_cache_.hits();
  s.cache_misses = result_cache_.misses();
  s.cache_evictions = result_cache_.evictions();
  s.cache_quota_evictions = result_cache_.quota_evictions();
  s.cache_bytes = result_cache_.bytes();
  for (const auto& tc : table_caches_) {
    s.table_cache_hits += tc->hits();
    s.table_cache_misses += tc->misses();
  }

  // Unknown-tenant refusals error at submission — no worker ever sees
  // them. Folding them into both errors and the kind tally preserves the
  // invariant sum(per_kind) == completed + errors.
  const std::uint64_t submit_errors = submit_errors_->value();
  s.errors += submit_errors;
  s.per_kind[static_cast<int>(RequestKind::kDeepnEncode)] += submit_errors;

  stats::Histogram queue_wait = make_latency_histogram();
  stats::Histogram service_time = make_latency_histogram();
  stats::Histogram total = make_latency_histogram();
  double queue_wait_max = 0.0, service_time_max = 0.0, total_max = 0.0;
  struct TenantMerge {
    TenantStats out;
    stats::Histogram service_time = make_tenant_latency_histogram();
    double service_max_us = 0.0;
  };
  std::map<std::string, TenantMerge> tenants;
  for (const std::unique_ptr<WorkerStats>& wsp : worker_stats_) {
    WorkerStats& ws = *wsp;
    std::lock_guard<std::mutex> lock(ws.mutex);
    s.completed += ws.completed;
    s.errors += ws.errors;
    for (int k = 0; k < kNumRequestKinds; ++k) s.per_kind[k] += ws.per_kind[k];
    s.batches += ws.batches;
    s.batched_requests += ws.batched_requests;
    s.max_batch = std::max(s.max_batch, ws.max_batch);
    s.ctx_huffman_builds += ws.ctx_deltas.huffman_builds;
    s.ctx_reciprocal_builds += ws.ctx_deltas.reciprocal_builds;
    s.ctx_quality_table_builds += ws.ctx_deltas.quality_table_builds;
    s.ctx_decoder_builds += ws.ctx_deltas.huffman_decoder_builds;
    queue_wait.merge(ws.queue_wait);
    service_time.merge(ws.service_time);
    total.merge(ws.total);
    queue_wait_max = std::max(queue_wait_max, ws.queue_wait_max_us);
    service_time_max = std::max(service_time_max, ws.service_time_max_us);
    total_max = std::max(total_max, ws.total_max_us);
    for (const auto& [name, tc] : ws.tenants) {
      TenantMerge& m = tenants[name];
      m.out.requests += tc.requests;
      m.out.completed += tc.completed;
      m.out.errors += tc.errors;
      m.out.cache_hits += tc.cache_hits;
      m.out.table_cache_hits += tc.table_hits;
      m.out.table_cache_misses += tc.table_misses;
      m.out.ctx_huffman_builds += tc.ctx.huffman_builds;
      m.out.ctx_reciprocal_builds += tc.ctx.reciprocal_builds;
      m.out.ctx_quality_table_builds += tc.ctx.quality_table_builds;
      m.out.ctx_decoder_builds += tc.ctx.huffman_decoder_builds;
      m.service_time.merge(tc.service_time);
      m.service_max_us = std::max(m.service_max_us, tc.service_max_us);
    }
  }
  s.queue_wait = summarize(queue_wait, queue_wait_max);
  s.service_time = summarize(service_time, service_time_max);
  s.total = summarize(total, total_max);
  s.tenants.reserve(tenants.size());
  for (auto& [name, m] : tenants) {
    m.out.name = name;
    m.out.service_time = summarize(m.service_time, m.service_max_us);
    s.tenants.push_back(std::move(m.out));
  }
  return s;
}

void TranscodeService::collect_metrics(std::vector<obs::Sample>& out) const {
  // One snapshot per gather(): everything ServiceStats knows, as samples.
  // The submission counters are owned registry instruments and are NOT
  // re-emitted here. stats() touches worker mutexes and cache counters
  // only — never this registry — so running under the registry mutex
  // cannot deadlock.
  const ServiceStats s = stats();
  auto counter = [&out](const char* name, std::uint64_t v, obs::Labels labels = {}) {
    out.push_back({name, std::move(labels), static_cast<double>(v),
                   obs::SampleKind::kCounter});
  };
  auto gauge = [&out](const char* name, double v, obs::Labels labels = {}) {
    out.push_back({name, std::move(labels), v, obs::SampleKind::kGauge});
  };
  auto latency = [&](const std::string& prefix, const LatencySummary& l,
                     obs::Labels labels = obs::Labels{}) {
    auto with = [&labels](const char* key, const char* value) {
      obs::Labels ls = labels;
      ls.emplace_back(key, value);
      return ls;
    };
    counter((prefix + "_count").c_str(), l.count, labels);
    gauge((prefix + "_us").c_str(), l.p50_us, with("quantile", "0.5"));
    gauge((prefix + "_us").c_str(), l.p95_us, with("quantile", "0.95"));
    gauge((prefix + "_us").c_str(), l.p99_us, with("quantile", "0.99"));
    gauge((prefix + "_us_max").c_str(), l.max_us, labels);
  };

  counter("serve_requests_completed_total", s.completed);
  counter("serve_requests_errors_total", s.errors);
  for (int k = 0; k < kNumRequestKinds; ++k)
    counter("serve_requests_by_kind_total", s.per_kind[k],
            {{"kind", kind_name(static_cast<RequestKind>(k))}});
  counter("serve_result_cache_hits_total", s.cache_hits);
  counter("serve_result_cache_misses_total", s.cache_misses);
  counter("serve_result_cache_evictions_total", s.cache_evictions);
  counter("serve_result_cache_quota_evictions_total", s.cache_quota_evictions);
  gauge("serve_result_cache_bytes", static_cast<double>(s.cache_bytes));
  counter("serve_table_cache_hits_total", s.table_cache_hits);
  counter("serve_table_cache_misses_total", s.table_cache_misses);
  counter("serve_batches_total", s.batches);
  counter("serve_batched_requests_total", s.batched_requests);
  gauge("serve_max_batch", static_cast<double>(s.max_batch));
  gauge("serve_queue_capacity", static_cast<double>(s.queue_capacity));
  gauge("serve_queue_high_water", static_cast<double>(s.queue_high_water));
  gauge("serve_shard_count", static_cast<double>(s.shard_count));
  counter("serve_steals_total", s.steals);
  counter("serve_ctx_huffman_builds_total", s.ctx_huffman_builds);
  counter("serve_ctx_reciprocal_builds_total", s.ctx_reciprocal_builds);
  counter("serve_ctx_quality_table_builds_total", s.ctx_quality_table_builds);
  counter("serve_ctx_decoder_builds_total", s.ctx_decoder_builds);
  latency("serve_queue_wait", s.queue_wait);
  latency("serve_service_time", s.service_time);
  latency("serve_total", s.total);
  for (const TenantStats& t : s.tenants) {
    const obs::Labels tl = {{"tenant", t.name}};
    counter("serve_tenant_requests_total", t.requests, tl);
    counter("serve_tenant_completed_total", t.completed, tl);
    counter("serve_tenant_errors_total", t.errors, tl);
    counter("serve_tenant_cache_hits_total", t.cache_hits, tl);
    counter("serve_tenant_table_cache_hits_total", t.table_cache_hits, tl);
    counter("serve_tenant_table_cache_misses_total", t.table_cache_misses, tl);
    counter("serve_tenant_ctx_huffman_builds_total", t.ctx_huffman_builds, tl);
    counter("serve_tenant_ctx_reciprocal_builds_total", t.ctx_reciprocal_builds, tl);
    counter("serve_tenant_ctx_quality_table_builds_total",
            t.ctx_quality_table_builds, tl);
    counter("serve_tenant_ctx_decoder_builds_total", t.ctx_decoder_builds, tl);
    latency("serve_tenant_service_time", t.service_time, tl);
  }
}

}  // namespace dnj::serve
