#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "api/convert.hpp"
#include "api/session.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/decoder.hpp"
#include "nn/trainer.hpp"

namespace dnj::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

LatencySummary summarize(const stats::Histogram& h, double exact_max_us) {
  LatencySummary s;
  s.count = h.total();
  if (s.count == 0) return s;
  s.p50_us = h.quantile(0.50);
  s.p95_us = h.quantile(0.95);
  s.p99_us = h.quantile(0.99);
  s.max_us = exact_max_us;
  return s;
}

/// One queued request: the request itself, its completion (a promise OR a
/// callback — never both), and everything the worker needs without
/// re-deriving it (cache key, submission timestamp).
struct TranscodeService::Job {
  Request req;
  std::promise<Response> promise;
  Callback done;  ///< when set, completion goes here instead of the promise
  CacheKey key;
  bool cacheable = false;
  Clock::time_point enqueue;
};

/// Per-worker accounting. Each worker mutates only its own instance, under
/// its own mutex (uncontended in steady state — stats() is the only other
/// reader), which keeps the hot path lock-cheap and the whole structure
/// TSan-clean.
struct TranscodeService::WorkerStats {
  std::mutex mutex;
  stats::Histogram queue_wait = make_latency_histogram();
  stats::Histogram service_time = make_latency_histogram();
  stats::Histogram total = make_latency_histogram();
  double queue_wait_max_us = 0.0;
  double service_time_max_us = 0.0;
  double total_max_us = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t per_kind[kNumRequestKinds] = {0, 0, 0, 0, 0};
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t max_batch = 0;
  jpeg::pipeline::CodecContext::ReuseCounters ctx_deltas;
};

TranscodeService::TranscodeService(ServiceConfig config)
    : config_(std::move(config)),
      result_cache_(config_.cache_capacity),
      table_cache_(config_.table_cache_capacity) {
  config_.workers = std::max(1, config_.workers);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.max_batch = std::max(1, config_.max_batch);
  deepn_tables_digest_ =
      digest_table(config_.deepn_chroma, digest_table(config_.deepn_luma));

  queue_ = std::make_unique<runtime::MpmcQueue<Job>>(config_.queue_capacity);
  worker_stats_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w)
    worker_stats_.push_back(std::make_unique<WorkerStats>());

  // A private pool, not ThreadPool::global(): pumps occupy their worker for
  // the service's whole lifetime, which would starve the shared pool's
  // parallel loops. Each pump is one submitted task; with exactly as many
  // workers as pumps every worker runs exactly one pump, and the pool
  // destructor's drain guarantee is what shutdown() leans on.
  workers_ = std::make_unique<runtime::ThreadPool>(static_cast<unsigned>(config_.workers));
  for (int w = 0; w < config_.workers; ++w)
    workers_->submit([this, w] { pump(w); });
}

TranscodeService::~TranscodeService() { shutdown(); }

void TranscodeService::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  queue_->close();   // refuse new work, wake blocked submitters and pumps
  workers_.reset();  // pumps drain the accepted backlog, then workers join
}

std::future<Response> TranscodeService::submit(Request req) {
  Job job;
  job.req = std::move(req);
  std::future<Response> future = job.promise.get_future();
  submit_job(std::move(job));
  return future;
}

void TranscodeService::submit(Request req, Callback done) {
  Job job;
  job.req = std::move(req);
  job.done = std::move(done);
  submit_job(std::move(job));
}

void TranscodeService::submit_job(Job job) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  job.cacheable = cacheable(job.req.kind) && result_cache_.enabled();
  // Only the config half here: admission and batching never read the input
  // half, and hashing the payload on the submission path would make
  // rejection under overload O(payload). Workers derive the input half
  // lazily when a cache lookup actually happens.
  job.key.config = request_config_digest(job.req);
  job.enqueue = Clock::now();

  const bool accepted = config_.admission == AdmissionPolicy::kReject
                            ? queue_->try_push(job)
                            : queue_->push(job);
  if (!accepted) {
    // try_push fails on full or closed; push only on closed. Closed wins
    // the tie-break so shutdown refusals are always typed kShutdown.
    if (queue_->closed()) {
      refused_shutdown_.fetch_add(1, std::memory_order_relaxed);
      refuse(std::move(job), Status::kShutdown, "service is shut down");
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      refuse(std::move(job), Status::kRejected, "submission queue full");
    }
  }
}

void TranscodeService::fulfill(Job&& job, Response&& resp) {
  if (job.done) {
    // The callback contract says "must not throw"; enforcing it here keeps
    // a misbehaving callback from unwinding a pump (which would violate
    // the pool's no-throw task contract and take the process down).
    try {
      job.done(std::move(resp));
    } catch (...) {
    }
  } else {
    job.promise.set_value(std::move(resp));
  }
}

void TranscodeService::refuse(Job&& job, Status status, const char* why) {
  Response r;
  r.status = status;
  r.error = why;
  fulfill(std::move(job), std::move(r));
}

void TranscodeService::pump(int worker_id) {
  WorkerStats& ws = *worker_stats_[static_cast<std::size_t>(worker_id)];
  std::vector<Job> batch;
  Job first;
  while (queue_->pop(first)) {
    batch.clear();
    batch.push_back(std::move(first));
    if (config_.max_batch > 1) {
      const RequestKind kind = batch[0].req.kind;
      const std::uint64_t cfg = batch[0].key.config;
      queue_->pop_while(
          [kind, cfg](const Job& j) {
            return j.req.kind == kind && j.key.config == cfg;
          },
          static_cast<std::size_t>(config_.max_batch) - 1, batch);
    }
    process_batch(batch, ws);
  }
}

void TranscodeService::process_batch(std::vector<Job>& batch, WorkerStats& ws) {
  // Stats-ordering contract: by the time a future is fulfilled, its batch
  // and its own lifecycle counters/latencies are visible to stats(). Hence
  // batch-level counters go in at assembly, per-request counters right
  // before each set_value. Context-warmth deltas are only knowable after
  // the batch ran; they settle when the batch finishes (final once
  // shutdown() returned). The per-request lock is uncontended in steady
  // state — stats() is the only other party that ever takes it.
  {
    std::lock_guard<std::mutex> lock(ws.mutex);
    ++ws.batches;
    if (batch.size() > 1) ws.batched_requests += batch.size();
    ws.max_batch = std::max<std::uint64_t>(ws.max_batch, batch.size());
  }

  // The pump thread's context persists across batches; counters are read
  // before/after so the stats report rebuilds attributable to this batch.
  const jpeg::pipeline::CodecContext::ReuseCounters before =
      jpeg::pipeline::thread_codec_context().reuse_counters();

  for (Job& job : batch) {
    const Clock::time_point picked = Clock::now();
    if (job.cacheable) job.key.input = request_input_digest(job.req);
    Response resp;
    if (job.cacheable && result_cache_.get(job.key, &resp.bytes)) {
      resp.cache_hit = true;
    } else {
      resp = run(job.req, /*use_table_cache=*/true);
      if (job.cacheable && resp.status == Status::kOk)
        result_cache_.put(job.key, resp.bytes);
    }
    const Clock::time_point done = Clock::now();
    resp.batch_size = static_cast<int>(batch.size());
    resp.queue_us = us_between(job.enqueue, picked);
    resp.service_us = us_between(picked, done);
    {
      std::lock_guard<std::mutex> lock(ws.mutex);
      const double total_us = us_between(job.enqueue, done);
      ws.queue_wait.add(resp.queue_us);
      ws.service_time.add(resp.service_us);
      ws.total.add(total_us);
      ws.queue_wait_max_us = std::max(ws.queue_wait_max_us, resp.queue_us);
      ws.service_time_max_us = std::max(ws.service_time_max_us, resp.service_us);
      ws.total_max_us = std::max(ws.total_max_us, total_us);
      ++ws.per_kind[static_cast<int>(job.req.kind)];
      if (resp.status == Status::kOk) ++ws.completed; else ++ws.errors;
      if (resp.cache_hit) ++ws.cache_hits;
    }
    fulfill(std::move(job), std::move(resp));
  }

  const jpeg::pipeline::CodecContext::ReuseCounters after =
      jpeg::pipeline::thread_codec_context().reuse_counters();
  std::lock_guard<std::mutex> lock(ws.mutex);
  ws.ctx_deltas.huffman_builds += after.huffman_builds - before.huffman_builds;
  ws.ctx_deltas.reciprocal_builds += after.reciprocal_builds - before.reciprocal_builds;
  ws.ctx_deltas.quality_table_builds +=
      after.quality_table_builds - before.quality_table_builds;
  ws.ctx_deltas.huffman_decoder_builds +=
      after.huffman_decoder_builds - before.huffman_decoder_builds;
}

namespace {

/// Folds a façade status into a Response: any non-ok api status becomes a
/// typed kError with the façade's message (the serve taxonomy's catch-all
/// for handler failures — exactly what the pre-façade exception path
/// produced, message for message).
bool fold_status(const api::Status& status, Response& r) {
  if (status.ok()) return true;
  r = Response{};
  r.status = Status::kError;
  r.error = status.message();
  return false;
}

}  // namespace

Response TranscodeService::run(const Request& req, bool use_table_cache) {
  // The codec request kinds run through the public façade (dnj::api) —
  // the service is the façade's first in-tree consumer, so the boundary
  // contract (typed statuses in, bit-identical payloads out) is exercised
  // by every serving test. Session binds codec work to this worker
  // thread's codec context, the same warm arenas the direct calls used;
  // payloads are byte-identical to the pre-façade implementation. One
  // deliberate tightening rides along: the façade validates options, so a
  // request whose config carries quality outside [1, 100] (which raw
  // jpeg::encode silently clamps) now gets a typed kError instead of
  // clamped bytes. execute() shares this path, so the submit()==execute()
  // determinism contract is unaffected.
  static thread_local api::Session session;
  const api::Codec codec = session.codec();
  Response r;
  try {
    switch (req.kind) {
      case RequestKind::kEncode: {
        api::Result<std::vector<std::uint8_t>> res =
            codec.encode(req.image.view(), api::detail::from_config(req.config));
        if (fold_status(res.status(), r)) r.bytes = res.take();
        break;
      }
      case RequestKind::kDecode: {
        api::Result<api::DecodedImage> res = codec.decode(req.bytes);
        if (fold_status(res.status(), r)) {
          api::DecodedImage img = res.take();
          r.image = image::Image(img.width, img.height, img.channels,
                                 std::move(img.pixels));
        }
        break;
      }
      case RequestKind::kTranscode: {
        api::Result<std::vector<std::uint8_t>> res =
            codec.transcode(req.bytes, api::detail::from_config(req.config));
        if (fold_status(res.status(), r)) r.bytes = res.take();
        break;
      }
      case RequestKind::kDeepnEncode: {
        api::Result<std::vector<std::uint8_t>> res = codec.encode(
            req.image.view(),
            api::detail::from_config(deepn_config(req.quality, use_table_cache)));
        if (fold_status(res.status(), r)) r.bytes = res.take();
        break;
      }
      case RequestKind::kInfer: {
        if (!config_.model)
          throw std::runtime_error("kInfer request but no model configured");
        const image::Image img =
            jpeg::decode(req.bytes, jpeg::pipeline::thread_codec_context());
        // Layer::forward caches activations for backward, so inference is
        // serialized; the output is a pure function of (weights, image),
        // which keeps the determinism contract intact.
        std::lock_guard<std::mutex> lock(model_mutex_);
        r.probs = nn::predict_probs(*config_.model, img);
        break;
      }
    }
  } catch (const std::exception& e) {
    r = Response{};
    r.status = Status::kError;
    r.error = e.what();
  } catch (...) {
    // A non-std exception (a user-supplied model can throw anything) must
    // not unwind the pump — that would break the always-fulfilled future
    // guarantee and terminate the process via the pool's no-throw contract.
    r = Response{};
    r.status = Status::kError;
    r.error = "handler threw a non-std exception";
  }
  return r;
}

jpeg::EncoderConfig TranscodeService::deepn_config(int quality, bool use_table_cache) {
  quality = std::clamp(quality, 1, 100);
  TablePair pair;
  const CacheKey key{deepn_tables_digest_, static_cast<std::uint64_t>(quality)};
  if (!use_table_cache || !table_cache_.get(key, &pair)) {
    pair.luma = config_.deepn_luma.scaled(quality);
    pair.chroma = config_.deepn_chroma.scaled(quality);
    if (use_table_cache) table_cache_.put(key, pair);
  }
  jpeg::EncoderConfig cfg;
  cfg.use_custom_tables = true;
  cfg.luma_table = pair.luma;
  cfg.chroma_table = pair.chroma;
  cfg.subsampling = jpeg::Subsampling::k444;
  return cfg;
}

Response TranscodeService::execute(const Request& req) {
  // Reference path: same handlers, same thread-local context mechanism,
  // but no queue, no batching, and — deliberately — no caches (the table
  // cache included), so cache correctness is testable by comparing
  // submit() against execute().
  return run(req, /*use_table_cache=*/false);
}

ServiceStats TranscodeService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.refused_shutdown = refused_shutdown_.load(std::memory_order_relaxed);
  s.queue_capacity = queue_->capacity();
  s.queue_high_water = queue_->high_water();
  s.cache_hits = result_cache_.hits();
  s.cache_misses = result_cache_.misses();
  s.cache_evictions = result_cache_.evictions();
  s.table_cache_hits = table_cache_.hits();
  s.table_cache_misses = table_cache_.misses();

  stats::Histogram queue_wait = make_latency_histogram();
  stats::Histogram service_time = make_latency_histogram();
  stats::Histogram total = make_latency_histogram();
  double queue_wait_max = 0.0, service_time_max = 0.0, total_max = 0.0;
  for (const std::unique_ptr<WorkerStats>& wsp : worker_stats_) {
    WorkerStats& ws = *wsp;
    std::lock_guard<std::mutex> lock(ws.mutex);
    s.completed += ws.completed;
    s.errors += ws.errors;
    for (int k = 0; k < kNumRequestKinds; ++k) s.per_kind[k] += ws.per_kind[k];
    s.batches += ws.batches;
    s.batched_requests += ws.batched_requests;
    s.max_batch = std::max(s.max_batch, ws.max_batch);
    s.ctx_huffman_builds += ws.ctx_deltas.huffman_builds;
    s.ctx_reciprocal_builds += ws.ctx_deltas.reciprocal_builds;
    s.ctx_quality_table_builds += ws.ctx_deltas.quality_table_builds;
    s.ctx_decoder_builds += ws.ctx_deltas.huffman_decoder_builds;
    queue_wait.merge(ws.queue_wait);
    service_time.merge(ws.service_time);
    total.merge(ws.total);
    queue_wait_max = std::max(queue_wait_max, ws.queue_wait_max_us);
    service_time_max = std::max(service_time_max, ws.service_time_max_us);
    total_max = std::max(total_max, ws.total_max_us);
  }
  s.queue_wait = summarize(queue_wait, queue_wait_max);
  s.service_time = summarize(service_time, service_time_max);
  s.total = summarize(total, total_max);
  return s;
}

}  // namespace dnj::serve
