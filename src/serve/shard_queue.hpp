// Digest-affinity sharded submission queue — the scheduling primitive that
// keeps a tenant's requests on workers whose caches are already hot.
//
// N bounded FIFO sub-queues ("shards") behind one mutex. Producers push to
// the shard the service's consistent-hash ring picked for the request's
// config digest; each consumer (worker pump) names a home shard and pops
// from it first. A consumer whose home shard is empty may *steal* the head
// of the fullest foreign shard (when stealing is enabled) — correctness is
// untouched because every request is an independent pure computation; only
// cache warmth is traded for utilization.
//
// Same design vocabulary as runtime::MpmcQueue, deliberately:
//  * One mutex + two condition variables for all shards. Items are whole
//    requests costing milliseconds of codec work; a sharded-lock scheme
//    would optimize the one cost that does not matter here while making
//    the steal path (which must see every shard) racy to reason about.
//  * Strict FIFO per shard. pop_while drains compatible followers from the
//    shard the batch head came from, so micro-batches stay digest-pure.
//  * Explicit close() lifecycle: pushes fail, consumers drain then exit.
//    With stealing a consumer exits only when EVERY shard is empty; without
//    it, when its home shard is empty (each shard's home worker drains its
//    own backlog).
//  * Bounded by construction: per-shard capacity = ceil(capacity / shards),
//    so total occupancy never exceeds capacity() and a single hot shard
//    cannot absorb the whole admission budget of every other tenant.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace dnj::serve {

template <typename T>
class ShardedQueue {
 public:
  /// `shards` and the per-shard split of `capacity` are clamped to >= 1.
  ShardedQueue(std::size_t shards, std::size_t capacity)
      : per_shard_(std::max<std::size_t>(1, (std::max<std::size_t>(1, capacity) +
                                             std::max<std::size_t>(1, shards) - 1) /
                                                std::max<std::size_t>(1, shards))),
        shards_(std::max<std::size_t>(1, shards)) {}

  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// Total capacity across shards (what admission is bounded by).
  std::size_t capacity() const { return per_shard_ * shards_.size(); }

  /// Blocking push into `shard`: waits for space in that shard. Returns
  /// true when `item` was moved in; false (item untouched) when the queue
  /// is closed — including when it closes mid-wait.
  bool push(T& item, std::size_t shard) {
    std::unique_lock<std::mutex> lock(mutex_);
    std::deque<T>& q = shards_[shard % shards_.size()];
    not_full_.wait(lock, [&] { return closed_ || q.size() < per_shard_; });
    if (closed_) return false;
    enqueue_locked(q, item);
    lock.unlock();
    // notify_all, not _one: consumers wait on different predicates (home
    // vs steal), so the one woken by _one might not be able to take this
    // item. Wakeups are trivially cheap next to the codec work per item.
    not_empty_.notify_all();
    return true;
  }

  /// Non-blocking push: false (item untouched) when the target shard is
  /// full or the queue is closed — the reject admission policy.
  bool try_push(T& item, std::size_t shard) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::deque<T>& q = shards_[shard % shards_.size()];
      if (closed_ || q.size() >= per_shard_) return false;
      enqueue_locked(q, item);
    }
    not_empty_.notify_all();
    return true;
  }

  /// Blocking pop with affinity: takes from `home` when it has work;
  /// otherwise, when `steal` is set, takes the head of the fullest
  /// non-empty foreign shard. `*from_shard` reports where the item came
  /// from so the caller can micro-batch out of the same shard. Returns
  /// false only when the queue is closed AND drained (all shards with
  /// stealing, the home shard without).
  bool pop(std::size_t home, bool steal, T& out, std::size_t* from_shard) {
    home %= shards_.size();
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] {
      return closed_ || !shards_[home].empty() || (steal && size_ > 0);
    });
    std::size_t victim = home;
    if (shards_[home].empty()) {
      if (!steal || size_ == 0) return false;  // closed_, by the predicate
      std::size_t fullest = 0;
      for (std::size_t s = 0; s < shards_.size(); ++s)
        if (shards_[s].size() > fullest) { fullest = shards_[s].size(); victim = s; }
      ++steals_;
    }
    std::deque<T>& q = shards_[victim];
    out = std::move(q.front());
    q.pop_front();
    --size_;
    if (from_shard != nullptr) *from_shard = victim;
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Non-blocking conditional drain of one shard: moves that shard's heads
  /// into `out` while the head satisfies `pred` and fewer than `max` items
  /// have been taken. FIFO within the shard is preserved — items are never
  /// skipped over. The micro-batching primitive, per shard.
  template <typename Pred>
  std::size_t pop_while(std::size_t shard, Pred pred, std::size_t max, std::vector<T>& out) {
    std::size_t taken = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::deque<T>& q = shards_[shard % shards_.size()];
      while (taken < max && !q.empty() && pred(q.front())) {
        out.push_back(std::move(q.front()));
        q.pop_front();
        --size_;
        ++taken;
      }
    }
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  /// Closes the queue: subsequent pushes fail, blocked pushers wake and
  /// fail, consumers drain their remainder then fail. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Total occupancy across shards.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  /// Maximum total occupancy ever observed — never exceeds capacity().
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  /// Pops served from a foreign shard (stealing enabled, home was empty).
  std::uint64_t steals() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return steals_;
  }

 private:
  void enqueue_locked(std::deque<T>& q, T& item) {
    q.push_back(std::move(item));
    if (++size_ > high_water_) high_water_ = size_;
  }

  const std::size_t per_shard_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::deque<T>> shards_;
  std::size_t size_ = 0;        ///< total occupancy, all shards
  std::size_t high_water_ = 0;
  std::uint64_t steals_ = 0;
  bool closed_ = false;
};

}  // namespace dnj::serve
