#include "core/deepnjpeg.hpp"

namespace dnj::core {

DesignResult DeepNJpeg::design(const data::Dataset& ds, const DesignConfig& config) {
  DesignResult res;
  res.profile = analyze(ds, config.analysis);
  res.bands = magnitude_based(res.profile, config.band_sizes);
  res.params = config.plm;
  if (config.dataset_thresholds)
    res.params = PlmParams::with_dataset_thresholds(res.params, res.profile,
                                                    config.band_sizes.hf(),
                                                    config.band_sizes.mf);
  res.table = plm_quant_table(res.profile, res.params);
  return res;
}

jpeg::EncoderConfig DeepNJpeg::encoder_config(const DesignResult& design,
                                              bool optimize_huffman) {
  return custom_table_config(design.table, optimize_huffman);
}

TranscodeResult DeepNJpeg::compress_dataset(const data::Dataset& ds,
                                            const DesignConfig& config) {
  const DesignResult d = design(ds, config);
  return transcode(ds, encoder_config(d, config.optimize_huffman));
}

}  // namespace dnj::core
