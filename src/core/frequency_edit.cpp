#include "core/frequency_edit.hpp"

#include <cmath>
#include <stdexcept>

#include "image/blocks.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/zigzag.hpp"

namespace dnj::core {

namespace {

/// Applies `edit` to the DCT coefficients of every 8x8 block of every
/// channel, then reconstructs.
template <typename EditFn>
image::Image edit_in_frequency_domain(const image::Image& img, EditFn&& edit) {
  image::Image out(img.width(), img.height(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    const image::PlaneF plane = image::to_plane(img, c);
    int bx = 0, by = 0;
    std::vector<image::BlockF> blocks = image::split_blocks(plane, &bx, &by);
    for (image::BlockF& blk : blocks) {
      image::level_shift(blk);
      image::BlockF freq = jpeg::fdct(blk);
      edit(freq);
      blk = jpeg::idct(freq);
      image::level_unshift(blk);
    }
    const image::PlaneF merged = image::merge_blocks(blocks, bx, by);
    image::from_plane(merged, out, c);
  }
  return out;
}

}  // namespace

image::Image remove_high_frequency(const image::Image& img, int n) {
  if (n < 0 || n > 64) throw std::invalid_argument("remove_high_frequency: n out of range");
  return edit_in_frequency_domain(img, [n](image::BlockF& freq) {
    for (int pos = 64 - n; pos < 64; ++pos)
      freq[static_cast<std::size_t>(jpeg::kZigzag[static_cast<std::size_t>(pos)])] = 0.0f;
  });
}

image::Image quantize_band_only(const image::Image& img, const BandSplit& split, Band band,
                                int q) {
  if (q < 1) throw std::invalid_argument("quantize_band_only: q must be >= 1");
  return edit_in_frequency_domain(img, [&split, band, q](image::BlockF& freq) {
    for (int k = 0; k < 64; ++k) {
      if (split.band_of[static_cast<std::size_t>(k)] != band) continue;
      const float qf = static_cast<float>(q);
      freq[static_cast<std::size_t>(k)] =
          std::nearbyintf(freq[static_cast<std::size_t>(k)] / qf) * qf;
    }
  });
}

}  // namespace dnj::core
