// Piece-wise linear mapping (Eq. 3 of the paper): derives each band's
// quantization step from its coefficient standard deviation.
//
//            | a - k1 * sigma     sigma <= T1          (HF band)
//   Q(sigma)=| b - k2 * sigma     T1 < sigma <= T2     (MF band)
//            | c - k3 * sigma     sigma > T2           (LF band)
//
// subject to Q >= Qmin (and Q <= Qmax so tables stay 8-bit like the paper's
// a = 255 setting). Large-sigma bands — the ones that matter most to the
// DNN (Eq. 2) — receive small steps; low-energy bands are quantized hard.
#pragma once

#include "core/frequency_analysis.hpp"
#include "jpeg/quant.hpp"

namespace dnj::core {

struct PlmParams {
  double a = 255.0;
  double b = 80.0;
  double c = 240.0;
  double k1 = 9.75;
  double k2 = 1.0;
  double k3 = 3.0;
  double t1 = 20.0;
  double t2 = 60.0;
  double qmin = 5.0;
  double qmax = 255.0;

  /// The ImageNet-tuned constants from Section 5 of the paper.
  static PlmParams paper_defaults() { return PlmParams{}; }

  /// Replaces t1/t2 with dataset-derived values: t1 = sigma at the HF/MF
  /// rank boundary and t2 = sigma at the MF/LF boundary (Section 3.2.2
  /// chooses the thresholds from the ranked sigma' list; we take the exact
  /// band-boundary sigmas for the configured 36/22/6 split).
  static PlmParams with_dataset_thresholds(PlmParams base, const FrequencyProfile& profile,
                                           int hf_count = 36, int mf_count = 22);
};

/// Eq. 3 for one band.
double plm_step(double sigma, const PlmParams& params);

/// Applies Eq. 3 to all 64 bands of a frequency profile.
jpeg::QuantTable plm_quant_table(const FrequencyProfile& profile, const PlmParams& params);

}  // namespace dnj::core
