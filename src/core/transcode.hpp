// Dataset-level codec operations: re-encode every image of a dataset under
// an encoder configuration, collect total byte counts, and compute the
// paper's compression-rate metric (CR is measured relative to the QF = 100
// JPEG dataset, which the paper calls "original", CR = 1).
#pragma once

#include "data/dataset.hpp"
#include "jpeg/codec.hpp"

namespace dnj::core {

struct TranscodeResult {
  data::Dataset dataset;        ///< decoded (lossy) images, labels preserved
  std::size_t total_bytes = 0;  ///< sum of complete encoded stream sizes
  std::size_t scan_bytes = 0;   ///< sum of entropy-coded payload sizes only
  double mean_psnr = 0.0;       ///< fidelity vs. the input dataset
};

/// Encodes and decodes every sample; returns the lossy dataset plus size
/// and fidelity accounting. Samples are processed in parallel
/// (`num_threads`: 0 = DNJ_THREADS / hardware default, 1 = serial) with
/// per-sample results merged in dataset order, so the accounting — byte
/// totals, mean PSNR, decoded pixels — is bit-identical at every thread
/// count.
TranscodeResult transcode(const data::Dataset& ds, const jpeg::EncoderConfig& config,
                          int num_threads = 0);

/// Decodes one JFIF stream and re-encodes it under `config` through the
/// caller's context — the single-stream primitive the serving layer's
/// transcode requests run on. Exactly equivalent to jpeg::decode followed
/// by jpeg::encode (byte-identical output). The default-context overload
/// uses the calling thread's shared context. ByteSpan converts implicitly
/// from std::vector<uint8_t>; callers holding mapped buffers pass
/// {ptr, size} with no copy.
std::vector<std::uint8_t> transcode_bytes(ByteSpan bytes,
                                          const jpeg::EncoderConfig& config,
                                          jpeg::pipeline::CodecContext& ctx);
std::vector<std::uint8_t> transcode_bytes(ByteSpan bytes,
                                          const jpeg::EncoderConfig& config);

/// Encoded byte total only (no decode) — cheaper when only CR is needed.
std::size_t dataset_encoded_bytes(const data::Dataset& ds, const jpeg::EncoderConfig& config,
                                  int num_threads = 0);

/// Entropy-coded payload total only (headers/tables excluded — the
/// per-image marginal cost when tables ship once; see jpeg::scan_byte_count).
std::size_t dataset_scan_bytes(const data::Dataset& ds, const jpeg::EncoderConfig& config,
                               int num_threads = 0);

/// The paper's reference point: total bytes of the dataset as QF = 100 JPEG.
std::size_t reference_bytes_qf100(const data::Dataset& ds, int num_threads = 0);

/// Scan-payload variant of the QF-100 reference.
std::size_t reference_scan_bytes_qf100(const data::Dataset& ds, int num_threads = 0);

/// CR of a method relative to a reference byte count.
double compression_rate(std::size_t reference_bytes, std::size_t method_bytes);

/// Encoder config that applies one custom table to luma and chroma alike
/// (our datasets carry class information in luma; the paper designs a
/// single table from the sampled dataset statistics).
jpeg::EncoderConfig custom_table_config(const jpeg::QuantTable& table,
                                        bool optimize_huffman = false);

}  // namespace dnj::core
