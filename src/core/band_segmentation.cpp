#include "core/band_segmentation.hpp"

#include <stdexcept>

#include "jpeg/zigzag.hpp"

namespace dnj::core {

namespace {
void check_sizes(const BandSizes& sizes) {
  if (sizes.lf < 0 || sizes.mf < 0 || sizes.lf + sizes.mf > 64)
    throw std::invalid_argument("BandSizes: counts out of range");
}
}  // namespace

BandSplit magnitude_based(const FrequencyProfile& profile, const BandSizes& sizes) {
  check_sizes(sizes);
  BandSplit split;
  // ascending_order[63] has the largest sigma; the top `lf` ranks are LF.
  for (int r = 0; r < 64; ++r) {
    const int natural = profile.ascending_order[static_cast<std::size_t>(r)];
    const int from_top = 63 - r;  // 0 = largest sigma
    Band b;
    if (from_top < sizes.lf)
      b = Band::kLF;
    else if (from_top < sizes.lf + sizes.mf)
      b = Band::kMF;
    else
      b = Band::kHF;
    split.band_of[static_cast<std::size_t>(natural)] = b;
  }
  return split;
}

BandSplit position_based(const BandSizes& sizes) {
  check_sizes(sizes);
  BandSplit split;
  for (int pos = 0; pos < 64; ++pos) {
    const int natural = jpeg::kZigzag[static_cast<std::size_t>(pos)];
    Band b;
    if (pos < sizes.lf)
      b = Band::kLF;
    else if (pos < sizes.lf + sizes.mf)
      b = Band::kMF;
    else
      b = Band::kHF;
    split.band_of[static_cast<std::size_t>(natural)] = b;
  }
  return split;
}

}  // namespace dnj::core
