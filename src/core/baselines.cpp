#include "core/baselines.hpp"

#include <stdexcept>

#include "jpeg/zigzag.hpp"

namespace dnj::core {

jpeg::QuantTable rm_hf_table(const jpeg::QuantTable& base, int n_removed) {
  if (n_removed < 0 || n_removed > 63)
    throw std::invalid_argument("rm_hf_table: n_removed out of range");
  std::array<std::uint16_t, 64> steps = base.natural();
  for (int pos = 64 - n_removed; pos < 64; ++pos)
    steps[static_cast<std::size_t>(jpeg::kZigzag[static_cast<std::size_t>(pos)])] = kRemovedStep;
  return jpeg::QuantTable(steps);
}

jpeg::QuantTable same_q_table(int q) {
  if (q < 1 || q > 255) throw std::invalid_argument("same_q_table: q out of range");
  return jpeg::QuantTable::uniform(static_cast<std::uint16_t>(q));
}

}  // namespace dnj::core
