#include "core/frequency_analysis.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "image/blocks.hpp"
#include "image/color.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/pipeline/coeff_plane.hpp"

namespace dnj::core {

namespace {

void accumulate_image(const image::Image& img, bool use_luma, stats::BandStats& acc) {
  // Per-worker arenas, reused across every image this thread analyzes.
  thread_local image::YCbCrPlanes ycc;
  thread_local jpeg::pipeline::CoeffPlane coeffs;
  const image::PlaneF* plane;
  if (use_luma && img.channels() == 3) {
    image::to_ycbcr_into(img, ycc);
    plane = &ycc.y;
  } else {
    image::to_plane_into(img, 0, ycc.y);
    plane = &ycc.y;
  }
  // Tile into a contiguous coefficient plane (level shift fused) and run
  // the batched in-place DCT — same arithmetic as the seed's per-block
  // split_blocks / level_shift / fdct loop, without the per-block copies.
  const int bx = image::padded_dim(plane->width()) / image::kBlockDim;
  const int by = image::padded_dim(plane->height()) / image::kBlockDim;
  coeffs.tile_from(*plane, bx, by, -128.0f);
  jpeg::fdct_batch(coeffs.data(), coeffs.block_count());
  for (std::size_t b = 0; b < coeffs.block_count(); ++b) acc.add_block(coeffs.block(b));
}

}  // namespace

FrequencyProfile make_profile(const stats::BandStats& band_stats, std::uint64_t images) {
  FrequencyProfile p;
  for (int k = 0; k < 64; ++k) p.sigma[static_cast<std::size_t>(k)] = band_stats.band(k).stddev();
  p.blocks_analyzed = band_stats.band(0).count();
  p.images_analyzed = images;

  std::iota(p.ascending_order.begin(), p.ascending_order.end(), 0);
  std::stable_sort(p.ascending_order.begin(), p.ascending_order.end(),
                   [&](int a, int b) { return p.sigma[static_cast<std::size_t>(a)] < p.sigma[static_cast<std::size_t>(b)]; });
  for (int r = 0; r < 64; ++r) p.rank_of[static_cast<std::size_t>(p.ascending_order[static_cast<std::size_t>(r)])] = r;
  return p;
}

FrequencyProfile analyze(const data::Dataset& ds, const AnalysisConfig& config) {
  if (ds.empty()) throw std::invalid_argument("analyze: empty dataset");
  if (config.sample_interval < 1)
    throw std::invalid_argument("analyze: sample_interval must be >= 1");

  // Class-stratified sampling: every k-th image *per class*, matching the
  // per-class loop of Algorithm 1.
  stats::BandStats acc;
  std::uint64_t images = 0;
  std::vector<int> per_class_counter(static_cast<std::size_t>(std::max(ds.num_classes, 1)), 0);
  for (const data::Sample& s : ds.samples) {
    int& counter = per_class_counter[static_cast<std::size_t>(s.label)];
    ++counter;
    if (counter % config.sample_interval != 0) continue;
    accumulate_image(s.image, config.use_luma, acc);
    ++images;
  }
  if (images == 0) throw std::invalid_argument("analyze: sampling selected no images");
  return make_profile(acc, images);
}

FrequencyProfile analyze_image(const image::Image& img, bool use_luma) {
  stats::BandStats acc;
  accumulate_image(img, use_luma, acc);
  return make_profile(acc, 1);
}

}  // namespace dnj::core
