#include "core/plm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnj::core {

PlmParams PlmParams::with_dataset_thresholds(PlmParams base, const FrequencyProfile& profile,
                                             int hf_count, int mf_count) {
  if (hf_count < 1 || mf_count < 1 || hf_count + mf_count >= 64)
    throw std::invalid_argument("with_dataset_thresholds: bad band counts");
  // Ranks are ascending sigma; the HF band is ranks [0, hf_count).
  base.t1 = profile.sigma_at_rank(hf_count - 1);
  base.t2 = profile.sigma_at_rank(hf_count + mf_count - 1);
  if (base.t2 < base.t1) base.t2 = base.t1;
  return base;
}

double plm_step(double sigma, const PlmParams& params) {
  if (params.qmin < 1.0 || params.qmax < params.qmin)
    throw std::invalid_argument("plm_step: bad Q bounds");
  if (params.t2 < params.t1) throw std::invalid_argument("plm_step: thresholds inverted");
  double q;
  if (sigma <= params.t1)
    q = params.a - params.k1 * sigma;
  else if (sigma <= params.t2)
    q = params.b - params.k2 * sigma;
  else
    q = params.c - params.k3 * sigma;
  return std::clamp(q, params.qmin, params.qmax);
}

jpeg::QuantTable plm_quant_table(const FrequencyProfile& profile, const PlmParams& params) {
  std::array<std::uint16_t, 64> steps{};
  for (int k = 0; k < 64; ++k)
    steps[static_cast<std::size_t>(k)] = static_cast<std::uint16_t>(
        std::lround(plm_step(profile.sigma[static_cast<std::size_t>(k)], params)));
  return jpeg::QuantTable(steps);
}

}  // namespace dnj::core
