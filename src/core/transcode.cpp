#include "core/transcode.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "image/metrics.hpp"

namespace dnj::core {

TranscodeResult transcode(const data::Dataset& ds, const jpeg::EncoderConfig& config) {
  if (ds.empty()) throw std::invalid_argument("transcode: empty dataset");
  TranscodeResult res;
  res.dataset.num_classes = ds.num_classes;
  res.dataset.samples.reserve(ds.size());
  double psnr_sum = 0.0;
  std::size_t finite_psnr = 0;
  for (const data::Sample& s : ds.samples) {
    jpeg::RoundTrip rt = jpeg::round_trip(s.image, config);
    res.total_bytes += rt.bytes.size();
    res.scan_bytes += jpeg::scan_byte_count(rt.bytes);
    const double p = image::psnr(s.image, rt.decoded);
    if (std::isfinite(p)) {
      psnr_sum += p;
      ++finite_psnr;
    }
    res.dataset.samples.push_back({std::move(rt.decoded), s.label});
  }
  res.mean_psnr = finite_psnr ? psnr_sum / static_cast<double>(finite_psnr)
                              : std::numeric_limits<double>::infinity();
  return res;
}

std::size_t dataset_encoded_bytes(const data::Dataset& ds, const jpeg::EncoderConfig& config) {
  if (ds.empty()) throw std::invalid_argument("dataset_encoded_bytes: empty dataset");
  std::size_t total = 0;
  for (const data::Sample& s : ds.samples) total += jpeg::encoded_size(s.image, config);
  return total;
}

std::size_t dataset_scan_bytes(const data::Dataset& ds, const jpeg::EncoderConfig& config) {
  if (ds.empty()) throw std::invalid_argument("dataset_scan_bytes: empty dataset");
  std::size_t total = 0;
  for (const data::Sample& s : ds.samples)
    total += jpeg::scan_byte_count(jpeg::encode(s.image, config));
  return total;
}

namespace {
jpeg::EncoderConfig qf100_config() {
  jpeg::EncoderConfig cfg;
  cfg.quality = 100;
  cfg.subsampling = jpeg::Subsampling::k444;
  return cfg;
}
}  // namespace

std::size_t reference_bytes_qf100(const data::Dataset& ds) {
  return dataset_encoded_bytes(ds, qf100_config());
}

std::size_t reference_scan_bytes_qf100(const data::Dataset& ds) {
  return dataset_scan_bytes(ds, qf100_config());
}

double compression_rate(std::size_t reference_bytes, std::size_t method_bytes) {
  if (method_bytes == 0) throw std::invalid_argument("compression_rate: zero method bytes");
  return static_cast<double>(reference_bytes) / static_cast<double>(method_bytes);
}

jpeg::EncoderConfig custom_table_config(const jpeg::QuantTable& table, bool optimize_huffman) {
  jpeg::EncoderConfig cfg;
  cfg.use_custom_tables = true;
  cfg.luma_table = table;
  cfg.chroma_table = table;
  cfg.subsampling = jpeg::Subsampling::k444;
  cfg.optimize_huffman = optimize_huffman;
  return cfg;
}

}  // namespace dnj::core
