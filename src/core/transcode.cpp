#include "core/transcode.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "image/metrics.hpp"
#include "runtime/parallel.hpp"

namespace dnj::core {

namespace {

/// Everything one sample contributes to the dataset accounting. Collected
/// per sample by the parallel loop, folded in sample order afterwards so
/// the floating-point PSNR accumulation matches the serial loop exactly.
struct SampleOutcome {
  std::size_t total_bytes = 0;
  std::size_t scan_bytes = 0;
  double psnr = 0.0;
  image::Image decoded;
};

}  // namespace

TranscodeResult transcode(const data::Dataset& ds, const jpeg::EncoderConfig& config,
                          int num_threads) {
  if (ds.empty()) throw std::invalid_argument("transcode: empty dataset");

  // Each parallel worker round-trips through its own thread-local
  // CodecContext: one scratch arena + cached-table set per worker, reused
  // across every sample that worker processes. Outputs are pure functions
  // of the inputs, so the fold below stays bit-identical at any thread
  // count.
  std::vector<SampleOutcome> outcomes = runtime::parallel_map(
      0, ds.size(), 1,
      [&](std::size_t i) {
        const data::Sample& s = ds.samples[i];
        jpeg::RoundTrip rt =
            jpeg::round_trip(s.image, config, jpeg::pipeline::thread_codec_context());
        SampleOutcome out;
        out.total_bytes = rt.bytes.size();
        out.scan_bytes = jpeg::scan_byte_count(rt.bytes);
        out.psnr = image::psnr(s.image, rt.decoded);
        out.decoded = std::move(rt.decoded);
        return out;
      },
      num_threads);

  TranscodeResult res;
  res.dataset.num_classes = ds.num_classes;
  res.dataset.samples.reserve(ds.size());
  double psnr_sum = 0.0;
  std::size_t finite_psnr = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SampleOutcome& out = outcomes[i];
    res.total_bytes += out.total_bytes;
    res.scan_bytes += out.scan_bytes;
    if (std::isfinite(out.psnr)) {
      psnr_sum += out.psnr;
      ++finite_psnr;
    }
    res.dataset.samples.push_back({std::move(out.decoded), ds.samples[i].label});
  }
  res.mean_psnr = finite_psnr ? psnr_sum / static_cast<double>(finite_psnr)
                              : std::numeric_limits<double>::infinity();
  return res;
}

std::vector<std::uint8_t> transcode_bytes(ByteSpan bytes,
                                          const jpeg::EncoderConfig& config,
                                          jpeg::pipeline::CodecContext& ctx) {
  return jpeg::encode(jpeg::decode(bytes, ctx), config, ctx);
}

std::vector<std::uint8_t> transcode_bytes(ByteSpan bytes,
                                          const jpeg::EncoderConfig& config) {
  return transcode_bytes(bytes, config, jpeg::pipeline::thread_codec_context());
}

std::size_t dataset_encoded_bytes(const data::Dataset& ds, const jpeg::EncoderConfig& config,
                                  int num_threads) {
  if (ds.empty()) throw std::invalid_argument("dataset_encoded_bytes: empty dataset");
  const std::vector<std::size_t> sizes = runtime::parallel_map(
      0, ds.size(), 1,
      [&](std::size_t i) {
        return jpeg::encoded_size(ds.samples[i].image, config,
                                  jpeg::pipeline::thread_codec_context());
      },
      num_threads);
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  return total;
}

std::size_t dataset_scan_bytes(const data::Dataset& ds, const jpeg::EncoderConfig& config,
                               int num_threads) {
  if (ds.empty()) throw std::invalid_argument("dataset_scan_bytes: empty dataset");
  const std::vector<std::size_t> sizes = runtime::parallel_map(
      0, ds.size(), 1,
      [&](std::size_t i) {
        return jpeg::scan_byte_count(jpeg::encode(
            ds.samples[i].image, config, jpeg::pipeline::thread_codec_context()));
      },
      num_threads);
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  return total;
}

namespace {
jpeg::EncoderConfig qf100_config() {
  jpeg::EncoderConfig cfg;
  cfg.quality = 100;
  cfg.subsampling = jpeg::Subsampling::k444;
  return cfg;
}
}  // namespace

std::size_t reference_bytes_qf100(const data::Dataset& ds, int num_threads) {
  return dataset_encoded_bytes(ds, qf100_config(), num_threads);
}

std::size_t reference_scan_bytes_qf100(const data::Dataset& ds, int num_threads) {
  return dataset_scan_bytes(ds, qf100_config(), num_threads);
}

double compression_rate(std::size_t reference_bytes, std::size_t method_bytes) {
  if (method_bytes == 0) throw std::invalid_argument("compression_rate: zero method bytes");
  return static_cast<double>(reference_bytes) / static_cast<double>(method_bytes);
}

jpeg::EncoderConfig custom_table_config(const jpeg::QuantTable& table, bool optimize_huffman) {
  jpeg::EncoderConfig cfg;
  cfg.use_custom_tables = true;
  cfg.luma_table = table;
  cfg.chroma_table = table;
  cfg.subsampling = jpeg::Subsampling::k444;
  cfg.optimize_huffman = optimize_huffman;
  return cfg;
}

}  // namespace dnj::core
