// The comparison methods of Section 5.1 / Fig. 7:
//  * RM-HF:  stock JPEG table with the top-N zig-zag (highest-frequency)
//            components "removed" — their quantization step is raised to the
//            maximum so those coefficients quantize to zero.
//  * SAME-Q: one uniform quantization step for all 64 bands.
#pragma once

#include "jpeg/quant.hpp"

namespace dnj::core {

/// Quantization step that zeroes any coefficient an 8-bit 8x8 DCT can
/// produce (|c| <= 8 * 255 < kRemovedStep / 2), i.e. true band removal.
/// Steps above 255 use the 16-bit DQT precision the codec supports.
inline constexpr std::uint16_t kRemovedStep = 8192;

/// RM-HF baseline: the `n_removed` highest zig-zag positions get
/// kRemovedStep, zeroing those bands entirely.
jpeg::QuantTable rm_hf_table(const jpeg::QuantTable& base, int n_removed);

/// SAME-Q baseline: uniform step `q` everywhere.
jpeg::QuantTable same_q_table(int q);

}  // namespace dnj::core
