// Algorithm 1 of the paper: class-stratified image sampling followed by
// per-band DCT coefficient statistics. The output sigma_ij ranking drives
// both the band segmentation and the PLM quantization-table design.
#pragma once

#include <array>
#include <cstdint>

#include "data/dataset.hpp"
#include "stats/band_stats.hpp"

namespace dnj::core {

struct AnalysisConfig {
  /// Sampling interval k: every k-th image of each class is analyzed
  /// (Algorithm 1 lines 10-15). 1 = use every image.
  int sample_interval = 1;
  /// Analyze the luma plane (true) or the raw first channel (false).
  bool use_luma = true;
};

/// Per-band standard deviations plus the ascending-magnitude ranking the
/// paper calls delta'.
struct FrequencyProfile {
  /// sigma_ij in natural (row-major) order.
  std::array<double, 64> sigma{};
  /// ascending_order[r] = natural band index of the r-th *smallest* sigma.
  std::array<int, 64> ascending_order{};
  /// rank_of[natural index] = r (0 = smallest sigma, 63 = largest).
  std::array<int, 64> rank_of{};
  std::uint64_t blocks_analyzed = 0;
  std::uint64_t images_analyzed = 0;

  /// sigma of the r-th smallest band.
  double sigma_at_rank(int r) const { return sigma[static_cast<std::size_t>(ascending_order[static_cast<std::size_t>(r)])]; }
};

/// Builds the ranking from raw band statistics.
FrequencyProfile make_profile(const stats::BandStats& band_stats, std::uint64_t images);

/// Runs Algorithm 1 over a dataset.
FrequencyProfile analyze(const data::Dataset& ds, const AnalysisConfig& config = {});

/// Analyzes a single image (used by tests and the quickstart example).
FrequencyProfile analyze_image(const image::Image& img, bool use_luma = true);

}  // namespace dnj::core
