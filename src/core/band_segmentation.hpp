// LF / MF / HF band segmentation. The paper's key departure from JPEG
// intuition is *magnitude-based* segmentation: a band is "low frequency" if
// its coefficient standard deviation is large, regardless of its position in
// the 8x8 grid. The conventional *position-based* split (zig-zag order) is
// provided as the comparison baseline used in Fig. 5.
#pragma once

#include <array>

#include "core/frequency_analysis.hpp"

namespace dnj::core {

enum class Band : int { kLF = 0, kMF = 1, kHF = 2 };

/// Band counts used by the paper: LF = 6, MF = 22, HF = 36 (positions
/// 1-6 / 7-28 / 29-64).
struct BandSizes {
  int lf = 6;
  int mf = 22;
  int hf() const { return 64 - lf - mf; }
};

struct BandSplit {
  /// band_of[natural index] = band assignment.
  std::array<Band, 64> band_of{};

  int count(Band b) const {
    int n = 0;
    for (Band x : band_of) n += (x == b) ? 1 : 0;
    return n;
  }
  /// Natural indices belonging to a band, in ascending natural order.
  std::vector<int> indices(Band b) const {
    std::vector<int> out;
    for (int k = 0; k < 64; ++k)
      if (band_of[static_cast<std::size_t>(k)] == b) out.push_back(k);
    return out;
  }
};

/// Magnitude-based segmentation (DeepN-JPEG): the `sizes.lf` bands with the
/// largest sigma are LF, the next `sizes.mf` are MF, the rest HF.
BandSplit magnitude_based(const FrequencyProfile& profile, const BandSizes& sizes = {});

/// Position-based segmentation (the baseline): zig-zag scan positions
/// 0..lf-1 are LF, lf..lf+mf-1 are MF, the rest HF.
BandSplit position_based(const BandSizes& sizes = {});

}  // namespace dnj::core
