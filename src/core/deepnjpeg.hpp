// Top-level DeepN-JPEG facade: analyze a dataset, design the quantization
// table, and hand back a ready-to-use encoder configuration. This is the
// one-stop API the examples and benches use.
#pragma once

#include "core/band_segmentation.hpp"
#include "core/baselines.hpp"
#include "core/frequency_analysis.hpp"
#include "core/plm.hpp"
#include "core/transcode.hpp"

namespace dnj::core {

/// Everything produced by the design flow of Fig. 4.
struct DesignResult {
  FrequencyProfile profile;   ///< Algorithm 1 output
  BandSplit bands;            ///< magnitude-based segmentation
  PlmParams params;           ///< PLM constants actually used
  jpeg::QuantTable table;     ///< the DeepN-JPEG quantization table
};

struct DesignConfig {
  AnalysisConfig analysis;
  BandSizes band_sizes;
  PlmParams plm = PlmParams::paper_defaults();
  /// Re-derive t1/t2 from the dataset's sigma ranking (Section 3.2.2)
  /// instead of using plm.t1/plm.t2 verbatim.
  bool dataset_thresholds = true;
  bool optimize_huffman = false;
};

class DeepNJpeg {
 public:
  /// Runs the full heuristic design flow (sampling -> frequency analysis ->
  /// band segmentation -> PLM) on a representative dataset.
  static DesignResult design(const data::Dataset& ds, const DesignConfig& config = {});

  /// Encoder configuration that compresses with a designed table.
  static jpeg::EncoderConfig encoder_config(const DesignResult& design,
                                            bool optimize_huffman = false);

  /// Convenience: design on `ds` then report (CR, transcoded dataset).
  static TranscodeResult compress_dataset(const data::Dataset& ds,
                                          const DesignConfig& config = {});
};

}  // namespace dnj::core
