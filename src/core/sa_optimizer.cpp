#include "core/sa_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "core/transcode.hpp"
#include "image/blocks.hpp"
#include "image/color.hpp"
#include "jpeg/dct.hpp"
#include "runtime/parallel.hpp"
#include "simd/dispatch.hpp"

namespace dnj::core {

namespace {

/// Cost evaluator: caches the sampled DCT blocks and image subset so each
/// candidate evaluation is two cheap passes.
class CostModel {
 public:
  CostModel(const data::Dataset& ds, const FrequencyProfile& profile, const SaConfig& config)
      : config_(config) {
    // Importance: sigma normalized to sum 1 (DC included — its fidelity
    // matters most).
    double total = 0.0;
    for (double s : profile.sigma) total += s;
    if (total <= 0.0) throw std::invalid_argument("anneal_table: degenerate profile");
    for (int k = 0; k < 64; ++k)
      importance_[static_cast<std::size_t>(k)] = profile.sigma[static_cast<std::size_t>(k)] / total;

    // Stratified image subset for the byte-count term.
    const std::size_t stride = std::max<std::size_t>(1, ds.size() / config.sample_images);
    for (std::size_t i = 0; i < ds.size() && images_.size() < static_cast<std::size_t>(config.sample_images);
         i += stride)
      images_.push_back(&ds.samples[i].image);

    // Coefficient samples for the distortion term: the flat buffer is
    // sized once from the per-image grids, then every worker tiles its
    // image (u8 -> float and level shift fused, channel 0) straight into
    // the image's slice and runs the batched in-place DCT there. Slices
    // are laid out in image order — the same bytes the old concatenating
    // loop produced — and the setup path performs no per-image
    // allocations at all.
    std::vector<std::size_t> offsets(images_.size() + 1, 0);
    for (std::size_t i = 0; i < images_.size(); ++i) {
      const int bx = image::padded_dim(images_[i]->width()) / image::kBlockDim;
      const int by = image::padded_dim(images_[i]->height()) / image::kBlockDim;
      offsets[i + 1] =
          offsets[i] + static_cast<std::size_t>(bx) * by * image::kBlockSize;
    }
    blocks_.resize(offsets.back());
    runtime::parallel_for(
        0, images_.size(), 1,
        [&](std::size_t i) {
          const int bx = image::padded_dim(images_[i]->width()) / image::kBlockDim;
          const int by = image::padded_dim(images_[i]->height()) / image::kBlockDim;
          float* dst = blocks_.data() + offsets[i];
          image::tile_image_blocks_into(*images_[i], 0, bx, by, dst, -128.0f);
          jpeg::fdct_batch(dst, static_cast<std::size_t>(bx) * by);
        },
        config.num_threads);
    block_count_ = blocks_.size() / image::kBlockSize;
  }

  double cost(const jpeg::QuantTable& table) const {
    // Byte term: real entropy-coded payload of the sample images. Encoded
    // in parallel through each worker's thread-local codec arena, summed in
    // image order — the same addition sequence as the serial loop, so the
    // cost (and hence the annealing trajectory) is independent of the
    // thread count.
    const jpeg::EncoderConfig cfg = custom_table_config(table);
    const std::vector<double> per_image_bytes = runtime::parallel_map(
        0, images_.size(), 1,
        [&](std::size_t i) {
          return static_cast<double>(jpeg::scan_byte_count(jpeg::encode(
              *images_[i], cfg, jpeg::pipeline::thread_codec_context())));
        },
        config_.num_threads);
    double bytes = 0.0;
    for (double b : per_image_bytes) bytes += b;

    // Distortion term: importance-weighted quantization MSE per band.
    // Per-block squared errors in parallel through the SIMD kernel layer
    // (lanes = bands, element-wise — every level matches the scalar
    // double-precision sequence), folded in block order — the fold must
    // stay per-block (not per-chunk partials) so the addition sequence
    // matches the plain serial loop bit-for-bit. The scratch buffer is
    // reused across calls: cost() runs once per SA iteration and would
    // otherwise reallocate blocks x 512 B every time.
    std::array<double, 64> steps;
    for (int k = 0; k < 64; ++k) steps[static_cast<std::size_t>(k)] = table.step(k);
    per_block_scratch_.resize(block_count_);
    runtime::parallel_for(
        0, block_count_, 16,
        [&](std::size_t b) {
          simd::kernels().quant_error_block(blocks_.data() + b * image::kBlockSize,
                                            steps.data(),
                                            per_block_scratch_[b].data());
        },
        config_.num_threads);
    std::array<double, 64> mse{};
    for (const std::array<double, 64>& sq : per_block_scratch_)
      for (std::size_t k = 0; k < 64; ++k) mse[k] += sq[k];
    double distortion = 0.0;
    for (int k = 0; k < 64; ++k)
      distortion += importance_[static_cast<std::size_t>(k)] * mse[static_cast<std::size_t>(k)] /
                    static_cast<double>(block_count_);
    return bytes + config_.lambda * distortion;
  }

 private:
  SaConfig config_;
  std::array<double, 64> importance_{};
  std::vector<const image::Image*> images_;
  /// Sampled DCT coefficients, 64-stride blocks (CoeffPlane layout).
  std::vector<float> blocks_;
  std::size_t block_count_ = 0;
  /// Per-block squared errors for the current candidate; cost() is called
  /// from the (single-threaded) SA loop, so one scratch buffer suffices.
  mutable std::vector<std::array<double, 64>> per_block_scratch_;
};

}  // namespace

SaResult anneal_table(const data::Dataset& ds, const FrequencyProfile& profile,
                      const jpeg::QuantTable& init, const SaConfig& config) {
  if (ds.empty()) throw std::invalid_argument("anneal_table: empty dataset");
  if (config.iterations < 1 || config.t_start <= config.t_end || config.t_end <= 0.0)
    throw std::invalid_argument("anneal_table: bad schedule");

  const CostModel model(ds, profile, config);
  std::mt19937_64 rng(config.seed);

  std::array<std::uint16_t, 64> current = init.natural();
  double current_cost = model.cost(jpeg::QuantTable(current));

  SaResult result;
  result.initial_cost = current_cost;
  result.table = jpeg::QuantTable(current);
  result.best_cost = current_cost;
  result.cost_history.reserve(static_cast<std::size_t>(config.iterations));

  const double cooling =
      std::pow(config.t_end / config.t_start, 1.0 / std::max(config.iterations - 1, 1));
  double temperature = config.t_start;

  std::uniform_int_distribution<int> pick_band(0, 63);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (int it = 0; it < config.iterations; ++it) {
    // Proposal: multiply or nudge one band's step.
    std::array<std::uint16_t, 64> candidate = current;
    const int k = pick_band(rng);
    const double r = unit(rng);
    int step = candidate[static_cast<std::size_t>(k)];
    if (r < 0.4)
      step = static_cast<int>(std::lround(step * (0.5 + unit(rng))));  // scale 0.5x..1.5x
    else if (r < 0.7)
      step += 1 + static_cast<int>(rng() % 8);
    else
      step -= 1 + static_cast<int>(rng() % 8);
    candidate[static_cast<std::size_t>(k)] =
        static_cast<std::uint16_t>(std::clamp(step, 1, config.max_step));

    const double cand_cost = model.cost(jpeg::QuantTable(candidate));
    const double delta = cand_cost - current_cost;
    if (delta <= 0.0 || unit(rng) < std::exp(-delta / temperature)) {
      current = candidate;
      current_cost = cand_cost;
      ++result.accepted_moves;
      if (cand_cost < result.best_cost) {
        result.best_cost = cand_cost;
        result.table = jpeg::QuantTable(candidate);
      }
    }
    result.cost_history.push_back(current_cost);
    temperature *= cooling;
  }
  return result;
}

}  // namespace dnj::core
