#include "core/sa_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <sstream>
#include <stdexcept>

#include "core/transcode.hpp"
#include "image/blocks.hpp"
#include "image/color.hpp"
#include "jpeg/dct.hpp"
#include "runtime/parallel.hpp"
#include "simd/dispatch.hpp"

namespace dnj::core {

namespace {

/// Cost evaluator: caches the sampled DCT blocks and image subset so each
/// candidate evaluation is two cheap passes.
class CostModel {
 public:
  CostModel(const data::Dataset& ds, const FrequencyProfile& profile, const SaConfig& config)
      : config_(config) {
    // Importance: sigma normalized to sum 1 (DC included — its fidelity
    // matters most).
    double total = 0.0;
    for (double s : profile.sigma) total += s;
    if (total <= 0.0) throw std::invalid_argument("anneal_table: degenerate profile");
    for (int k = 0; k < 64; ++k)
      importance_[static_cast<std::size_t>(k)] = profile.sigma[static_cast<std::size_t>(k)] / total;

    // Stratified image subset for the byte-count term.
    const std::size_t stride = std::max<std::size_t>(1, ds.size() / config.sample_images);
    for (std::size_t i = 0; i < ds.size() && images_.size() < static_cast<std::size_t>(config.sample_images);
         i += stride)
      images_.push_back(&ds.samples[i].image);

    // Coefficient samples for the distortion term: the flat buffer is
    // sized once from the per-image grids, then every worker tiles its
    // image (u8 -> float and level shift fused, channel 0) straight into
    // the image's slice and runs the batched in-place DCT there. Slices
    // are laid out in image order — the same bytes the old concatenating
    // loop produced — and the setup path performs no per-image
    // allocations at all.
    std::vector<std::size_t> offsets(images_.size() + 1, 0);
    for (std::size_t i = 0; i < images_.size(); ++i) {
      const int bx = image::padded_dim(images_[i]->width()) / image::kBlockDim;
      const int by = image::padded_dim(images_[i]->height()) / image::kBlockDim;
      offsets[i + 1] =
          offsets[i] + static_cast<std::size_t>(bx) * by * image::kBlockSize;
    }
    blocks_.resize(offsets.back());
    runtime::parallel_for(
        0, images_.size(), 1,
        [&](std::size_t i) {
          const int bx = image::padded_dim(images_[i]->width()) / image::kBlockDim;
          const int by = image::padded_dim(images_[i]->height()) / image::kBlockDim;
          float* dst = blocks_.data() + offsets[i];
          image::tile_image_blocks_into(*images_[i], 0, bx, by, dst, -128.0f);
          jpeg::fdct_batch(dst, static_cast<std::size_t>(bx) * by);
        },
        config.num_threads);
    block_count_ = blocks_.size() / image::kBlockSize;
  }

  double cost(const jpeg::QuantTable& table) const {
    // Byte term: real entropy-coded payload of the sample images. Encoded
    // in parallel through each worker's thread-local codec arena, summed in
    // image order — the same addition sequence as the serial loop, so the
    // cost (and hence the annealing trajectory) is independent of the
    // thread count.
    const jpeg::EncoderConfig cfg = custom_table_config(table);
    const std::vector<double> per_image_bytes = runtime::parallel_map(
        0, images_.size(), 1,
        [&](std::size_t i) {
          return static_cast<double>(jpeg::scan_byte_count(jpeg::encode(
              *images_[i], cfg, jpeg::pipeline::thread_codec_context())));
        },
        config_.num_threads);
    double bytes = 0.0;
    for (double b : per_image_bytes) bytes += b;

    // Distortion term: importance-weighted quantization MSE per band.
    // Per-block squared errors in parallel through the SIMD kernel layer
    // (lanes = bands, element-wise — every level matches the scalar
    // double-precision sequence), folded in block order — the fold must
    // stay per-block (not per-chunk partials) so the addition sequence
    // matches the plain serial loop bit-for-bit. The scratch buffer is
    // reused across calls: cost() runs once per SA iteration and would
    // otherwise reallocate blocks x 512 B every time.
    std::array<double, 64> steps;
    for (int k = 0; k < 64; ++k) steps[static_cast<std::size_t>(k)] = table.step(k);
    per_block_scratch_.resize(block_count_);
    runtime::parallel_for(
        0, block_count_, 16,
        [&](std::size_t b) {
          simd::kernels().quant_error_block(blocks_.data() + b * image::kBlockSize,
                                            steps.data(),
                                            per_block_scratch_[b].data());
        },
        config_.num_threads);
    std::array<double, 64> mse{};
    for (const std::array<double, 64>& sq : per_block_scratch_)
      for (std::size_t k = 0; k < 64; ++k) mse[k] += sq[k];
    double distortion = 0.0;
    for (int k = 0; k < 64; ++k)
      distortion += importance_[static_cast<std::size_t>(k)] * mse[static_cast<std::size_t>(k)] /
                    static_cast<double>(block_count_);
    return bytes + config_.lambda * distortion;
  }

 private:
  SaConfig config_;
  std::array<double, 64> importance_{};
  std::vector<const image::Image*> images_;
  /// Sampled DCT coefficients, 64-stride blocks (CoeffPlane layout).
  std::vector<float> blocks_;
  std::size_t block_count_ = 0;
  /// Per-block squared errors for the current candidate; cost() is called
  /// from the (single-threaded) SA loop, so one scratch buffer suffices.
  mutable std::vector<std::array<double, 64>> per_block_scratch_;
};

// --- checkpoint wire helpers (little-endian, like src/net framing) -------

constexpr std::uint32_t kCheckpointMagic = 0x53414A44;  // "DJAS"
constexpr std::uint32_t kCheckpointVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked little-endian reader; throws on truncation so a corrupt
/// checkpoint surfaces as kInvalidArgument, never as UB.
struct CheckpointReader {
  const std::vector<std::uint8_t>& buf;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > buf.size())
      throw std::invalid_argument("SA checkpoint: truncated");
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(buf[pos] | (buf[pos + 1] << 8));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[pos + static_cast<std::size_t>(i)]) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[pos + static_cast<std::size_t>(i)]) << (8 * i);
    pos += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

void validate_config(const data::Dataset& ds, const SaConfig& config) {
  if (ds.empty()) throw std::invalid_argument("anneal_table: empty dataset");
  if (config.iterations < 1 || config.t_start <= config.t_end || config.t_end <= 0.0)
    throw std::invalid_argument("anneal_table: bad schedule");
}

}  // namespace

struct SaStepper::Impl {
  Impl(const data::Dataset& ds, const FrequencyProfile& profile, const SaConfig& cfg)
      : config(cfg), model(ds, profile, cfg), rng(cfg.seed) {}

  SaConfig config;
  CostModel model;
  std::mt19937_64 rng;

  int iteration = 0;
  int accepted_moves = 0;
  double initial_cost = 0.0;
  double current_cost = 0.0;
  double best_cost_v = 0.0;
  double temperature = 0.0;
  std::array<std::uint16_t, 64> current{};
  std::array<std::uint16_t, 64> best{};
  std::vector<double> cost_history;

  double cooling() const {
    return std::pow(config.t_end / config.t_start, 1.0 / std::max(config.iterations - 1, 1));
  }
};

SaStepper::SaStepper(const data::Dataset& ds, const FrequencyProfile& profile,
                     const jpeg::QuantTable& init, const SaConfig& config) {
  validate_config(ds, config);
  impl_ = std::make_unique<Impl>(ds, profile, config);
  impl_->current = init.natural();
  impl_->best = impl_->current;
  impl_->current_cost = impl_->model.cost(jpeg::QuantTable(impl_->current));
  impl_->initial_cost = impl_->current_cost;
  impl_->best_cost_v = impl_->current_cost;
  impl_->temperature = config.t_start;
  impl_->cost_history.reserve(static_cast<std::size_t>(config.iterations));
}

SaStepper::SaStepper(const data::Dataset& ds, const FrequencyProfile& profile,
                     const SaConfig& config, const std::vector<std::uint8_t>& checkpoint) {
  validate_config(ds, config);

  CheckpointReader r{checkpoint};
  if (r.u32() != kCheckpointMagic) throw std::invalid_argument("SA checkpoint: bad magic");
  if (r.u32() != kCheckpointVersion) throw std::invalid_argument("SA checkpoint: version skew");

  impl_ = std::make_unique<Impl>(ds, profile, config);
  impl_->iteration = static_cast<int>(r.u32());
  impl_->accepted_moves = static_cast<int>(r.u32());
  impl_->initial_cost = r.f64();
  const double saved_current_cost = r.f64();
  const double saved_best_cost = r.f64();
  impl_->temperature = r.f64();
  for (auto& s : impl_->current) s = r.u16();
  for (auto& s : impl_->best) s = r.u16();
  const std::uint32_t history = r.u32();
  if (history > checkpoint.size())  // cheap sanity bound before resizing
    throw std::invalid_argument("SA checkpoint: corrupt history length");
  impl_->cost_history.reserve(static_cast<std::size_t>(config.iterations));
  for (std::uint32_t i = 0; i < history; ++i) impl_->cost_history.push_back(r.f64());
  const std::uint32_t rng_len = r.u32();
  r.need(rng_len);
  std::istringstream rng_in(std::string(reinterpret_cast<const char*>(checkpoint.data()) + r.pos,
                                        rng_len));
  rng_in >> impl_->rng;
  if (!rng_in) throw std::invalid_argument("SA checkpoint: corrupt RNG state");
  r.pos += rng_len;

  if (impl_->iteration < 0 || impl_->iteration > config.iterations ||
      impl_->cost_history.size() != static_cast<std::size_t>(impl_->iteration))
    throw std::invalid_argument("SA checkpoint: inconsistent iteration count");

  // Re-evaluate the carried tables on THIS stepper's cost surface. Over
  // the identical dataset the model is deterministic, so these equal the
  // serialized values bit-for-bit and the resumed trajectory matches the
  // uninterrupted run; over an extended dataset (refine mode) they rebase
  // the Metropolis comparisons onto the new surface instead of mixing
  // costs from two different models.
  impl_->current_cost = impl_->model.cost(jpeg::QuantTable(impl_->current));
  impl_->best_cost_v = impl_->model.cost(jpeg::QuantTable(impl_->best));
  (void)saved_current_cost;
  (void)saved_best_cost;
}

SaStepper::~SaStepper() = default;
SaStepper::SaStepper(SaStepper&&) noexcept = default;
SaStepper& SaStepper::operator=(SaStepper&&) noexcept = default;

int SaStepper::step(int n) {
  Impl& s = *impl_;
  const double cooling = s.cooling();
  std::uniform_int_distribution<int> pick_band(0, 63);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  int ran = 0;
  while (ran < n && s.iteration < s.config.iterations) {
    // Proposal: multiply or nudge one band's step. This body is the
    // one-shot annealer's loop verbatim — the checkpoint/resume identity
    // gate depends on the RNG draw order staying exactly this.
    std::array<std::uint16_t, 64> candidate = s.current;
    const int k = pick_band(s.rng);
    const double r = unit(s.rng);
    int step = candidate[static_cast<std::size_t>(k)];
    if (r < 0.4)
      step = static_cast<int>(std::lround(step * (0.5 + unit(s.rng))));  // scale 0.5x..1.5x
    else if (r < 0.7)
      step += 1 + static_cast<int>(s.rng() % 8);
    else
      step -= 1 + static_cast<int>(s.rng() % 8);
    candidate[static_cast<std::size_t>(k)] =
        static_cast<std::uint16_t>(std::clamp(step, 1, s.config.max_step));

    const double cand_cost = s.model.cost(jpeg::QuantTable(candidate));
    const double delta = cand_cost - s.current_cost;
    if (delta <= 0.0 || unit(s.rng) < std::exp(-delta / s.temperature)) {
      s.current = candidate;
      s.current_cost = cand_cost;
      ++s.accepted_moves;
      if (cand_cost < s.best_cost_v) {
        s.best_cost_v = cand_cost;
        s.best = candidate;
      }
    }
    s.cost_history.push_back(s.current_cost);
    s.temperature *= cooling;
    ++s.iteration;
    ++ran;
  }
  return ran;
}

bool SaStepper::done() const { return impl_->iteration >= impl_->config.iterations; }
int SaStepper::iteration() const { return impl_->iteration; }
int SaStepper::total_iterations() const { return impl_->config.iterations; }
double SaStepper::current_cost() const { return impl_->current_cost; }
double SaStepper::best_cost() const { return impl_->best_cost_v; }

SaResult SaStepper::result() const {
  SaResult result;
  result.table = jpeg::QuantTable(impl_->best);
  result.best_cost = impl_->best_cost_v;
  result.initial_cost = impl_->initial_cost;
  result.cost_history = impl_->cost_history;
  result.accepted_moves = impl_->accepted_moves;
  return result;
}

std::vector<std::uint8_t> SaStepper::serialize() const {
  const Impl& s = *impl_;
  std::ostringstream rng_out;
  rng_out << s.rng;
  const std::string rng_state = rng_out.str();

  std::vector<std::uint8_t> out;
  out.reserve(64 + 256 + s.cost_history.size() * 8 + rng_state.size());
  put_u32(out, kCheckpointMagic);
  put_u32(out, kCheckpointVersion);
  put_u32(out, static_cast<std::uint32_t>(s.iteration));
  put_u32(out, static_cast<std::uint32_t>(s.accepted_moves));
  put_f64(out, s.initial_cost);
  put_f64(out, s.current_cost);
  put_f64(out, s.best_cost_v);
  put_f64(out, s.temperature);
  for (std::uint16_t v : s.current) put_u16(out, v);
  for (std::uint16_t v : s.best) put_u16(out, v);
  put_u32(out, static_cast<std::uint32_t>(s.cost_history.size()));
  for (double c : s.cost_history) put_f64(out, c);
  put_u32(out, static_cast<std::uint32_t>(rng_state.size()));
  out.insert(out.end(), rng_state.begin(), rng_state.end());
  return out;
}

SaResult anneal_table(const data::Dataset& ds, const FrequencyProfile& profile,
                      const jpeg::QuantTable& init, const SaConfig& config) {
  SaStepper stepper(ds, profile, init, config);
  stepper.step(config.iterations);
  return stepper.result();
}

}  // namespace dnj::core
