// Direct frequency-domain image edits, used by the Fig. 3 experiment
// ("junco misclassified as robin after removing the top six high-frequency
// components") and by the band-sensitivity sweep of Fig. 5.
#pragma once

#include "core/band_segmentation.hpp"
#include "image/image.hpp"

namespace dnj::core {

/// Zeroes the `n` highest zig-zag frequency components of every 8x8 block
/// (per channel) and reconstructs the image — exactly the edit shown in
/// Fig. 3 of the paper.
image::Image remove_high_frequency(const image::Image& img, int n);

/// Quantizes (round(c/q) * q) only the bands of `split` assigned to `band`,
/// leaving all other coefficients untouched. This is the Fig. 5 protocol:
/// "vary the quantization step of the interested frequency bands while all
/// others use Q = 1".
image::Image quantize_band_only(const image::Image& img, const BandSplit& split, Band band,
                                int q);

}  // namespace dnj::core
