// Search-based quantization-table design via simulated annealing — the
// approach the paper cites (Hopkins et al., "Simulated annealing for JPEG
// quantization", its reference [23]) and explicitly rejects as intractable
// for a generalizable DNN pipeline. Implemented here as the ablation
// baseline: the `ablation_design` bench compares the PLM heuristic against
// this optimizer on compression rate, accuracy, and design cost.
//
// Objective per candidate table Q:
//     cost(Q) = bytes(Q) + lambda * sum_k importance_k * mse_k(Q)
// where bytes(Q) is the real entropy-coded size of a sample image set,
// mse_k is the quantization error of band k measured on sampled blocks, and
// importance_k is the normalized band sigma from Algorithm 1 — the same
// importance signal PLM uses, so the two designs optimize comparable goals.
#pragma once

#include <cstdint>
#include <vector>

#include "core/frequency_analysis.hpp"
#include "jpeg/quant.hpp"

namespace dnj::core {

struct SaConfig {
  int iterations = 400;
  double t_start = 2000.0;   ///< initial Metropolis temperature (cost units)
  double t_end = 1.0;        ///< final temperature (geometric schedule)
  double lambda = 12.0;      ///< distortion weight vs byte count
  int max_step = 255;        ///< upper bound for any quantization step
  int sample_images = 16;    ///< images used for the byte-count term
  std::uint64_t seed = 0x5A5A;
  /// Threads for cost evaluation (DCT precompute, byte term, MSE term).
  /// 0 = DNJ_THREADS / hardware default, 1 = serial. Partial results are
  /// merged in sample/block order, so every thread count anneals the
  /// identical table for a given seed.
  int num_threads = 0;
};

struct SaResult {
  jpeg::QuantTable table;
  double best_cost = 0.0;
  double initial_cost = 0.0;
  std::vector<double> cost_history;  ///< accepted cost per iteration
  int accepted_moves = 0;
};

/// Anneals a quantization table for `ds`, starting from `init`.
SaResult anneal_table(const data::Dataset& ds, const FrequencyProfile& profile,
                      const jpeg::QuantTable& init, const SaConfig& config = {});

}  // namespace dnj::core
