// Search-based quantization-table design via simulated annealing — the
// approach the paper cites (Hopkins et al., "Simulated annealing for JPEG
// quantization", its reference [23]) and explicitly rejects as intractable
// for a generalizable DNN pipeline. Implemented here as the ablation
// baseline: the `ablation_design` bench compares the PLM heuristic against
// this optimizer on compression rate, accuracy, and design cost.
//
// Objective per candidate table Q:
//     cost(Q) = bytes(Q) + lambda * sum_k importance_k * mse_k(Q)
// where bytes(Q) is the real entropy-coded size of a sample image set,
// mse_k is the quantization error of band k measured on sampled blocks, and
// importance_k is the normalized band sigma from Algorithm 1 — the same
// importance signal PLM uses, so the two designs optimize comparable goals.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/frequency_analysis.hpp"
#include "jpeg/quant.hpp"

namespace dnj::core {

struct SaConfig {
  int iterations = 400;
  double t_start = 2000.0;   ///< initial Metropolis temperature (cost units)
  double t_end = 1.0;        ///< final temperature (geometric schedule)
  double lambda = 12.0;      ///< distortion weight vs byte count
  int max_step = 255;        ///< upper bound for any quantization step
  int sample_images = 16;    ///< images used for the byte-count term
  std::uint64_t seed = 0x5A5A;
  /// Threads for cost evaluation (DCT precompute, byte term, MSE term).
  /// 0 = DNJ_THREADS / hardware default, 1 = serial. Partial results are
  /// merged in sample/block order, so every thread count anneals the
  /// identical table for a given seed.
  int num_threads = 0;
};

struct SaResult {
  jpeg::QuantTable table;
  double best_cost = 0.0;
  double initial_cost = 0.0;
  std::vector<double> cost_history;  ///< accepted cost per iteration
  int accepted_moves = 0;
};

/// Incremental simulated annealing with checkpointable optimizer state —
/// the engine behind both the one-shot `anneal_table` wrapper and the job
/// layer's pausable design jobs. The annealing trajectory is a pure
/// function of (dataset, profile, init, config): stepping N iterations in
/// any number of `step` calls, or serializing mid-run and restoring into a
/// fresh stepper over the same inputs, produces bit-identical tables and
/// cost histories. Restoring over an *extended* dataset is also supported
/// (the cost surface changes but the carried RNG/temperature state makes
/// the refinement deterministic) — that is the "refine as new sample
/// images stream in" mode.
class SaStepper {
 public:
  /// Fresh run from `init`. Throws std::invalid_argument on an empty
  /// dataset, a degenerate profile, or a bad schedule.
  SaStepper(const data::Dataset& ds, const FrequencyProfile& profile,
            const jpeg::QuantTable& init, const SaConfig& config);
  /// Resume from a `serialize()` checkpoint. The dataset/profile/config
  /// must describe the same cost surface for byte-identity with the
  /// uninterrupted run. Throws std::invalid_argument on a corrupt or
  /// version-skewed checkpoint.
  SaStepper(const data::Dataset& ds, const FrequencyProfile& profile, const SaConfig& config,
            const std::vector<std::uint8_t>& checkpoint);
  ~SaStepper();
  SaStepper(SaStepper&&) noexcept;
  SaStepper& operator=(SaStepper&&) noexcept;

  /// Runs up to `n` more iterations (stops at config.iterations); returns
  /// the number actually run.
  int step(int n);
  bool done() const;
  int iteration() const;        ///< iterations completed so far
  int total_iterations() const; ///< config.iterations
  double current_cost() const;
  double best_cost() const;

  /// Snapshot of the run so far; `result().table` is the best table seen.
  SaResult result() const;

  /// Byte-exact optimizer state (tables, costs, temperature, RNG stream,
  /// cost history) in a little-endian tagged format.
  std::vector<std::uint8_t> serialize() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Anneals a quantization table for `ds`, starting from `init`. One-shot
/// wrapper over SaStepper — identical output by construction.
SaResult anneal_table(const data::Dataset& ds, const FrequencyProfile& profile,
                      const jpeg::QuantTable& init, const SaConfig& config = {});

}  // namespace dnj::core
