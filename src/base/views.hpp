// Non-owning input views shared by every layer of the library.
//
// `ByteSpan` is the std::span<const uint8_t>-shaped view the codec entry
// points (decode, transcode, stream inspection) take instead of
// `const std::vector&`, so callers holding mapped files, arena slices or
// foreign buffers pass them without a copy. `PixelView` is the equivalent
// for interleaved 8-bit pixel data — the encoder reads pixels through it,
// so an `image::Image` and an FFI caller's raw buffer take the same path.
//
// Both are trivially copyable reference types: they never own, never
// allocate, and must not outlive the buffer they point into. They live in
// the root `dnj` namespace (not a subsystem) because image/, jpeg/, core/
// and api/ all traffic in them; this header depends only on the standard
// library so the public API headers can re-export it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnj {

/// Read-only view over a contiguous byte buffer.
struct ByteSpan {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  ByteSpan() = default;
  ByteSpan(const std::uint8_t* d, std::size_t n) : data(d), size(n) {}
  /// Implicit, like std::span: every existing `decode(vector)` call site
  /// keeps working unchanged.
  ByteSpan(const std::vector<std::uint8_t>& v) : data(v.data()), size(v.size()) {}

  bool empty() const { return size == 0; }
};

/// Read-only view over interleaved 8-bit pixels: pixel (x, y) channel c is
/// at pixels[(y * width + x) * channels + c]. Channels is 1 (gray) or
/// 3 (RGB) everywhere in this library.
struct PixelView {
  const std::uint8_t* pixels = nullptr;
  int width = 0;
  int height = 0;
  int channels = 0;

  PixelView() = default;
  PixelView(const std::uint8_t* p, int w, int h, int c)
      : pixels(p), width(w), height(h), channels(c) {}

  bool empty() const { return pixels == nullptr || width <= 0 || height <= 0; }
  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }
  std::size_t byte_size() const {
    return pixel_count() * static_cast<std::size_t>(channels);
  }
  std::uint8_t at(int x, int y, int c = 0) const {
    return pixels[(static_cast<std::size_t>(y) * width + x) * channels + c];
  }
};

}  // namespace dnj
