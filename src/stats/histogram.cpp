#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnj::stats {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins <= 0) throw std::invalid_argument("Histogram: bins must be positive");
  width_ = (hi - lo) / bins;
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  // Saturate in double before the int cast: values far outside the range
  // (e.g. a pathological multi-hour latency fed by the serving layer)
  // would otherwise overflow the cast itself. +inf saturates into the top
  // bin like any too-large value; NaN and -inf land in bin 0.
  const double pos = (x - lo_) / width_;
  int bin = 0;
  if (pos >= static_cast<double>(bins())) {
    bin = bins() - 1;
  } else if (pos > 0.0) {
    bin = static_cast<int>(pos);
  }
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(int bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::pmf(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::cdf(int bin) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (int b = 0; b <= bin; ++b) acc += count(b);
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::quantile(double p) const {
  if (total_ == 0) return lo_;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(total_);
  double acc = 0.0;
  for (int b = 0; b < bins(); ++b) {
    const double c = static_cast<double>(counts_[static_cast<std::size_t>(b)]);
    if (c == 0.0) continue;
    if (acc + c >= rank) {
      // rank falls inside bin b; spread its samples uniformly across it.
      const double frac = std::clamp((rank - acc) / c, 0.0, 1.0);
      return lo_ + (static_cast<double>(b) + frac) * width_;
    }
    acc += c;
  }
  // Numerical slack only: the loop always crosses `rank` at the last
  // occupied bin because acc reaches total_ >= rank there.
  return hi_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || bins() != other.bins())
    throw std::invalid_argument("Histogram::merge: geometry mismatch");
  for (int b = 0; b < bins(); ++b)
    counts_[static_cast<std::size_t>(b)] += other.counts_[static_cast<std::size_t>(b)];
  total_ += other.total_;
}

}  // namespace dnj::stats
