#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnj::stats {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins <= 0) throw std::invalid_argument("Histogram: bins must be positive");
  width_ = (hi - lo) / bins;
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  int bin = static_cast<int>((x - lo_) / width_);
  bin = std::clamp(bin, 0, bins() - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(int bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::pmf(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::cdf(int bin) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (int b = 0; b <= bin; ++b) acc += count(b);
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace dnj::stats
