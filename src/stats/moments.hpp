// Streaming statistics used by the frequency component analysis
// (Algorithm 1): the per-band standard deviation sigma_ij is accumulated over
// millions of DCT coefficients, so a numerically stable one-pass algorithm
// (Welford) is required.
#pragma once

#include <cstdint>

namespace dnj::stats {

/// Welford one-pass accumulator for mean / variance / min / max.
class RunningMoments {
 public:
  void add(double x);
  /// Merges another accumulator (parallel reduction), per Chan et al.
  void merge(const RunningMoments& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n). Zero for n < 2.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Sample variance (divide by n-1). Zero for n < 2.
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Mean absolute value — the MLE of the Laplace scale parameter b when the
  /// distribution is centred at zero (Reininger & Gibson model of AC bands).
  double mean_abs() const { return n_ ? abs_sum_ / static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double abs_sum_ = 0.0;
};

}  // namespace dnj::stats
