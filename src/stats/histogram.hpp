// Fixed-range histogram used to characterize the per-band DCT coefficient
// distributions (the paper builds "individual histograms" per frequency band
// in Algorithm 1 before extracting sigma) and, since the serving layer, the
// per-worker latency distributions behind the p50/p95/p99 SLO accounting.
#pragma once

#include <cstdint>
#include <vector>

namespace dnj::stats {

class Histogram {
 public:
  /// Bins the half-open range [lo, hi) uniformly into `bins` buckets.
  Histogram(double lo, double hi, int bins);

  /// Adds a sample; values outside [lo, hi) land in saturating edge bins.
  void add(double x);

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t count(int bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }

  /// Centre value of a bin.
  double bin_center(int bin) const;
  /// Empirical probability mass of a bin.
  double pmf(int bin) const;
  /// Empirical CDF evaluated at the right edge of `bin`.
  double cdf(int bin) const;

  /// Streaming quantile: the value v with CDF(v) >= p, linearly
  /// interpolated inside the bin the rank lands in (samples in a bin are
  /// treated as uniformly spread over it). p is clamped to [0, 1];
  /// quantile(0) is the left edge of the first occupied bin, quantile(1)
  /// the right edge of the last. An empty histogram returns lo(). Values
  /// that saturated into the edge bins are quantified at those bins, so
  /// quantiles near 0/1 are floor/ceiling estimates when the range clipped.
  double quantile(double p) const;

  /// Adds every count of `other` into this histogram. Both must share the
  /// exact same geometry (lo, hi, bins) — throws std::invalid_argument
  /// otherwise. Counts are integers, so merging per-worker histograms in
  /// any order yields the same result as one combined histogram; the
  /// serving layer merges per-worker latency histograms in worker order to
  /// keep snapshots deterministic by construction anyway.
  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dnj::stats
