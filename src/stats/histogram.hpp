// Fixed-range histogram used to characterize the per-band DCT coefficient
// distributions (the paper builds "individual histograms" per frequency band
// in Algorithm 1 before extracting sigma).
#pragma once

#include <cstdint>
#include <vector>

namespace dnj::stats {

class Histogram {
 public:
  /// Bins the half-open range [lo, hi) uniformly into `bins` buckets.
  Histogram(double lo, double hi, int bins);

  /// Adds a sample; values outside [lo, hi) land in saturating edge bins.
  void add(double x);

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t count(int bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }

  /// Centre value of a bin.
  double bin_center(int bin) const;
  /// Empirical probability mass of a bin.
  double pmf(int bin) const;
  /// Empirical CDF evaluated at the right edge of `bin`.
  double cdf(int bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dnj::stats
