// Per-frequency-band statistics container: one accumulator per entry of the
// 8x8 DCT grid. This is the data structure Algorithm 1 of the paper fills
// before the quantization-table design step reads out sigma_ij.
#pragma once

#include <array>
#include <cstddef>

#include "stats/moments.hpp"

namespace dnj::stats {

inline constexpr int kBands = 64;

/// Statistics for all 64 DCT frequency bands of an 8x8 block grid.
class BandStats {
 public:
  /// Adds one 64-coefficient block (row-major, natural order).
  template <typename Block>
  void add_block(const Block& coeffs) {
    for (int k = 0; k < kBands; ++k) bands_[static_cast<std::size_t>(k)].add(coeffs[k]);
  }

  void merge(const BandStats& other) {
    for (int k = 0; k < kBands; ++k)
      bands_[static_cast<std::size_t>(k)].merge(other.bands_[static_cast<std::size_t>(k)]);
  }

  const RunningMoments& band(int k) const { return bands_.at(static_cast<std::size_t>(k)); }
  RunningMoments& band(int k) { return bands_.at(static_cast<std::size_t>(k)); }

  /// sigma_ij for every band in natural (row-major) order.
  std::array<double, kBands> stddevs() const {
    std::array<double, kBands> out{};
    for (int k = 0; k < kBands; ++k) out[static_cast<std::size_t>(k)] = bands_[static_cast<std::size_t>(k)].stddev();
    return out;
  }

 private:
  std::array<RunningMoments, kBands> bands_{};
};

}  // namespace dnj::stats
