#include "stats/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dnj::stats {

double LaplaceFit::pdf(double x) const { return std::exp(-std::abs(x) / b) / (2.0 * b); }

double LaplaceFit::cdf(double x) const {
  if (x < 0.0) return 0.5 * std::exp(x / b);
  return 1.0 - 0.5 * std::exp(-x / b);
}

LaplaceFit LaplaceFit::mle(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("LaplaceFit::mle: no samples");
  double sum = 0.0;
  for (double s : samples) sum += std::abs(s);
  LaplaceFit fit;
  fit.b = std::max(sum / static_cast<double>(samples.size()), 1e-12);
  return fit;
}

double GaussianFit::pdf(double x) const {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * M_PI));
}

double GaussianFit::cdf(double x) const {
  return 0.5 * std::erfc(-(x - mu) / (sigma * std::sqrt(2.0)));
}

GaussianFit GaussianFit::mle(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("GaussianFit::mle: no samples");
  const double n = static_cast<double>(samples.size());
  const double mean = std::accumulate(samples.begin(), samples.end(), 0.0) / n;
  double var = 0.0;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= n;
  GaussianFit fit;
  fit.mu = mean;
  fit.sigma = std::max(std::sqrt(var), 1e-12);
  return fit;
}

template <typename Dist>
double ks_distance(std::vector<double> samples, const Dist& dist) {
  if (samples.empty()) throw std::invalid_argument("ks_distance: no samples");
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double model = dist.cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    worst = std::max({worst, std::abs(model - lo), std::abs(model - hi)});
  }
  return worst;
}

template <typename Dist>
double log_likelihood(const std::vector<double>& samples, const Dist& dist) {
  double ll = 0.0;
  for (double s : samples) ll += std::log(std::max(dist.pdf(s), 1e-300));
  return ll;
}

template double ks_distance<LaplaceFit>(std::vector<double>, const LaplaceFit&);
template double ks_distance<GaussianFit>(std::vector<double>, const GaussianFit&);
template double log_likelihood<LaplaceFit>(const std::vector<double>&, const LaplaceFit&);
template double log_likelihood<GaussianFit>(const std::vector<double>&, const GaussianFit&);

}  // namespace dnj::stats
