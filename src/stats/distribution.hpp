// Parametric fits for DCT coefficient distributions. Reininger & Gibson
// (1983), cited as [24] by the paper, model AC coefficients as zero-mean
// Laplacian and the DC coefficient as approximately Gaussian; the
// `coeff_distribution` bench reproduces that claim on our data.
#pragma once

#include <vector>

#include "stats/histogram.hpp"

namespace dnj::stats {

/// Zero-mean Laplace distribution with scale b: p(x) = exp(-|x|/b) / (2b).
struct LaplaceFit {
  double b = 1.0;

  double pdf(double x) const;
  double cdf(double x) const;
  /// Maximum-likelihood fit: b = mean(|x|).
  static LaplaceFit mle(const std::vector<double>& samples);
};

/// Gaussian distribution N(mu, sigma^2).
struct GaussianFit {
  double mu = 0.0;
  double sigma = 1.0;

  double pdf(double x) const;
  double cdf(double x) const;
  static GaussianFit mle(const std::vector<double>& samples);
};

/// Kolmogorov–Smirnov distance between the empirical CDF of `samples`
/// (sorted internally) and a model CDF. Smaller is a better fit.
template <typename Dist>
double ks_distance(std::vector<double> samples, const Dist& dist);

/// Log-likelihood of samples under a fitted model (for Laplace-vs-Gaussian
/// comparisons).
template <typename Dist>
double log_likelihood(const std::vector<double>& samples, const Dist& dist);

}  // namespace dnj::stats
