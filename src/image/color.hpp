// JFIF full-range BT.601 color transform (the one baseline JPEG uses).
//
//   Y  =  0.299 R + 0.587 G + 0.114 B
//   Cb = -0.168736 R - 0.331264 G + 0.5 B + 128
//   Cr =  0.5 R - 0.418688 G - 0.081312 B + 128
//
// All planes are full range [0, 255]; no studio-swing scaling is applied.
#pragma once

#include <array>

#include "image/image.hpp"

namespace dnj::image {

/// Result of splitting an RGB image into float Y/Cb/Cr planes.
struct YCbCrPlanes {
  PlaneF y;
  PlaneF cb;
  PlaneF cr;
};

/// Per-pixel forward transform. Inputs/outputs are full-range floats.
std::array<float, 3> rgb_to_ycbcr(float r, float g, float b);

/// Per-pixel inverse transform.
std::array<float, 3> ycbcr_to_rgb(float y, float cb, float cr);

/// Converts an interleaved RGB image to planar YCbCr. A grayscale image
/// yields a Y plane and flat (128) chroma planes.
YCbCrPlanes to_ycbcr(const Image& img);

/// Allocation-free variant of to_ycbcr: resizes the planes of `out` in
/// place (reusing their buffers once warm) and fills them with the same
/// values to_ycbcr produces. The PixelView form is the primary (the
/// encoder reads images through views); the Image overload forwards.
void to_ycbcr_into(PixelView img, YCbCrPlanes& out);
void to_ycbcr_into(const Image& img, YCbCrPlanes& out);

/// Reassembles an RGB image from YCbCr planes; all planes must share the
/// target dimensions (or exceed them, for block-padded planes).
Image to_rgb(const YCbCrPlanes& planes, int width, int height);

/// Same transform from three individually owned planes (e.g. codec-context
/// arenas that should not be gathered into a YCbCrPlanes by move).
Image to_rgb(const PlaneF& y, const PlaneF& cb, const PlaneF& cr, int width, int height);

}  // namespace dnj::image
