// Fidelity metrics used by the codec tests and the experiment harness.
#pragma once

#include "image/image.hpp"

namespace dnj::image {

/// Mean squared error over all channels. Images must match in shape.
double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB for 8-bit images. Returns +inf for
/// identical images.
double psnr(const Image& a, const Image& b);

/// Maximum absolute per-sample difference.
int max_abs_diff(const Image& a, const Image& b);

}  // namespace dnj::image
