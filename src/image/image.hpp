// Core image containers for the DeepN-JPEG reproduction.
//
// Two representations are used throughout the library:
//  * `Image`  — interleaved 8-bit pixels (1 = grayscale, 3 = RGB), the
//    at-rest form images take before compression and after decoding.
//  * `PlaneF` — a single float plane, the working form used by the color
//    transform, the DCT, and the neural-network front end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/views.hpp"

namespace dnj::image {

/// Interleaved 8-bit image. Pixel (x, y) channel c lives at
/// data[(y * width + x) * channels + c]. Channels is 1 (gray) or 3 (RGB).
class Image {
 public:
  Image() = default;

  /// Creates a zero-filled image. Throws std::invalid_argument on a zero
  /// dimension or an unsupported channel count.
  Image(int width, int height, int channels)
      : width_(width), height_(height), channels_(channels) {
    if (width <= 0 || height <= 0)
      throw std::invalid_argument("Image: dimensions must be positive");
    if (channels != 1 && channels != 3)
      throw std::invalid_argument("Image: channels must be 1 or 3");
    data_.assign(static_cast<std::size_t>(width) * height * channels, 0);
  }

  /// Adopts an existing interleaved pixel buffer (no zero-fill, no copy) —
  /// how DecodedImage pixels re-enter the library without a wasted
  /// allocate-and-memset. Throws std::invalid_argument on a geometry/size
  /// mismatch or bad dimensions/channels.
  Image(int width, int height, int channels, std::vector<std::uint8_t>&& pixels)
      : width_(width), height_(height), channels_(channels), data_(std::move(pixels)) {
    if (width <= 0 || height <= 0)
      throw std::invalid_argument("Image: dimensions must be positive");
    if (channels != 1 && channels != 3)
      throw std::invalid_argument("Image: channels must be 1 or 3");
    if (data_.size() != static_cast<std::size_t>(width) * height * channels)
      throw std::invalid_argument("Image: pixel buffer size does not match geometry");
  }

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  bool empty() const { return data_.empty(); }

  /// Number of pixels (not bytes).
  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * height_;
  }
  /// Total byte size of the raw pixel payload.
  std::size_t byte_size() const { return data_.size(); }

  std::uint8_t& at(int x, int y, int c = 0) { return data_[index(x, y, c)]; }
  std::uint8_t at(int x, int y, int c = 0) const { return data_[index(x, y, c)]; }

  /// Bounds-checked accessor used by tests; throws std::out_of_range.
  std::uint8_t at_checked(int x, int y, int c = 0) const {
    if (x < 0 || x >= width_ || y < 0 || y >= height_ || c < 0 || c >= channels_)
      throw std::out_of_range("Image::at_checked");
    return data_[index(x, y, c)];
  }

  std::vector<std::uint8_t>& data() { return data_; }
  const std::vector<std::uint8_t>& data() const { return data_; }

  /// Non-owning view of the pixel buffer — the form the encoder entry
  /// points consume, so owned images and foreign buffers share one path.
  PixelView view() const { return {data_.data(), width_, height_, channels_}; }

  bool operator==(const Image& o) const {
    return width_ == o.width_ && height_ == o.height_ &&
           channels_ == o.channels_ && data_ == o.data_;
  }
  bool operator!=(const Image& o) const { return !(*this == o); }

 private:
  std::size_t index(int x, int y, int c) const {
    return (static_cast<std::size_t>(y) * width_ + x) * channels_ + c;
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Single-channel float plane. Values are typically in [0, 255] before the
/// JPEG level shift and [-128, 127] after it.
class PlaneF {
 public:
  PlaneF() = default;
  PlaneF(int width, int height, float fill = 0.0f)
      : width_(width), height_(height) {
    if (width <= 0 || height <= 0)
      throw std::invalid_argument("PlaneF: dimensions must be positive");
    data_.assign(static_cast<std::size_t>(width) * height, fill);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }

  /// Resizes to (width, height) reusing the existing capacity where
  /// possible; sample values are unspecified afterwards. This is the
  /// arena-reuse primitive of the codec pipeline — unlike constructing a
  /// fresh PlaneF it performs no allocation once the buffer has grown to
  /// its high-water mark.
  void reset(int width, int height) {
    if (width <= 0 || height <= 0)
      throw std::invalid_argument("PlaneF::reset: dimensions must be positive");
    width_ = width;
    height_ = height;
    data_.resize(static_cast<std::size_t>(width) * height);
  }

  float& at(int x, int y) { return data_[static_cast<std::size_t>(y) * width_ + x]; }
  float at(int x, int y) const { return data_[static_cast<std::size_t>(y) * width_ + x]; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

/// Extracts channel `c` of `img` as a float plane (no level shift).
PlaneF to_plane(const Image& img, int c);

/// Allocation-free variant: resizes `out` in place (reusing its buffer once
/// warm) and writes the same samples to_plane produces.
void to_plane_into(const Image& img, int c, PlaneF& out);

/// Writes a float plane back into channel `c` of `img`, clamping to [0, 255]
/// and rounding to nearest. The plane may be larger than the image (padded);
/// excess samples are dropped.
void from_plane(const PlaneF& plane, Image& img, int c);

/// Clamps a float sample to the 8-bit range with round-to-nearest.
std::uint8_t clamp_u8(float v);

}  // namespace dnj::image
