#include "image/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace dnj::image {

namespace {
void check_same_shape(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height() || a.channels() != b.channels())
    throw std::invalid_argument("metrics: image shapes differ");
}
}  // namespace

double mse(const Image& a, const Image& b) {
  check_same_shape(a, b);
  double sum = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - static_cast<double>(b.data()[i]);
    sum += d * d;
  }
  return sum / static_cast<double>(a.data().size());
}

double psnr(const Image& a, const Image& b) {
  const double m = mse(a, b);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

int max_abs_diff(const Image& a, const Image& b) {
  check_same_shape(a, b);
  int worst = 0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    worst = std::max(worst, std::abs(static_cast<int>(a.data()[i]) - static_cast<int>(b.data()[i])));
  return worst;
}

}  // namespace dnj::image
