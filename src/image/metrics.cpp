#include "image/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "simd/dispatch.hpp"

namespace dnj::image {

namespace {
void check_same_shape(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height() || a.channels() != b.channels())
    throw std::invalid_argument("metrics: image shapes differ");
}
}  // namespace

double mse(const Image& a, const Image& b) {
  check_same_shape(a, b);
  // The squared-difference sum is exact in 64-bit integer arithmetic
  // (each term <= 255^2), so any SIMD accumulation order yields the same
  // value — the one place the determinism contract gets associativity for
  // free instead of by lane discipline.
  const std::uint64_t sum =
      simd::kernels().sum_sq_diff_u8(a.data().data(), b.data().data(), a.data().size());
  return static_cast<double>(sum) / static_cast<double>(a.data().size());
}

double psnr(const Image& a, const Image& b) {
  const double m = mse(a, b);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

int max_abs_diff(const Image& a, const Image& b) {
  check_same_shape(a, b);
  int worst = 0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    worst = std::max(worst, std::abs(static_cast<int>(a.data()[i]) - static_cast<int>(b.data()[i])));
  return worst;
}

}  // namespace dnj::image
