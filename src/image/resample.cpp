#include "image/resample.hpp"

#include <algorithm>
#include <cmath>

namespace dnj::image {

PlaneF downsample_2x2(const PlaneF& plane) {
  PlaneF out;
  downsample_2x2_into(plane, out);
  return out;
}

void downsample_2x2_into(const PlaneF& plane, PlaneF& out) {
  const int ow = (plane.width() + 1) / 2;
  const int oh = (plane.height() + 1) / 2;
  out.reset(ow, oh);
  for (int y = 0; y < oh; ++y) {
    for (int x = 0; x < ow; ++x) {
      float sum = 0.0f;
      int n = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const int sx = 2 * x + dx;
          const int sy = 2 * y + dy;
          if (sx < plane.width() && sy < plane.height()) {
            sum += plane.at(sx, sy);
            ++n;
          }
        }
      }
      out.at(x, y) = sum / static_cast<float>(n);
    }
  }
}

PlaneF upsample_2x2(const PlaneF& plane, int out_w, int out_h) {
  if ((out_w + 1) / 2 != plane.width() || (out_h + 1) / 2 != plane.height())
    throw std::invalid_argument("upsample_2x2: output dims inconsistent with input");
  PlaneF out(out_w, out_h);
  const int iw = plane.width();
  const int ih = plane.height();
  for (int y = 0; y < out_h; ++y) {
    // Source coordinate of the output sample centre in input space.
    const float fy = (static_cast<float>(y) + 0.5f) / 2.0f - 0.5f;
    const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, ih - 1);
    const int y1 = std::min(y0 + 1, ih - 1);
    const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
    for (int x = 0; x < out_w; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) / 2.0f - 0.5f;
      const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0, iw - 1);
      const int x1 = std::min(x0 + 1, iw - 1);
      const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
      const float top = plane.at(x0, y0) * (1.0f - wx) + plane.at(x1, y0) * wx;
      const float bot = plane.at(x0, y1) * (1.0f - wx) + plane.at(x1, y1) * wx;
      out.at(x, y) = top * (1.0f - wy) + bot * wy;
    }
  }
  return out;
}

PlaneF resize_nearest(const PlaneF& plane, int out_w, int out_h) {
  if (out_w <= 0 || out_h <= 0)
    throw std::invalid_argument("resize_nearest: dims must be positive");
  PlaneF out(out_w, out_h);
  for (int y = 0; y < out_h; ++y) {
    const int sy = std::min(static_cast<int>(static_cast<long long>(y) * plane.height() / out_h),
                            plane.height() - 1);
    for (int x = 0; x < out_w; ++x) {
      const int sx = std::min(static_cast<int>(static_cast<long long>(x) * plane.width() / out_w),
                              plane.width() - 1);
      out.at(x, y) = plane.at(sx, sy);
    }
  }
  return out;
}

}  // namespace dnj::image
