// Minimal binary PPM (P6) / PGM (P5) reader and writer so examples can get
// pixels in and out of the library without any external dependency.
#pragma once

#include <string>

#include "image/image.hpp"

namespace dnj::image {

/// Writes `img` as binary PGM (1 channel) or PPM (3 channels).
/// Throws std::runtime_error on I/O failure.
void write_pnm(const Image& img, const std::string& path);

/// Reads a binary P5/P6 file with maxval 255. Throws std::runtime_error on
/// parse or I/O failure.
Image read_pnm(const std::string& path);

}  // namespace dnj::image
