#include "image/color.hpp"

namespace dnj::image {

std::array<float, 3> rgb_to_ycbcr(float r, float g, float b) {
  const float y = 0.299f * r + 0.587f * g + 0.114f * b;
  const float cb = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
  const float cr = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
  return {y, cb, cr};
}

std::array<float, 3> ycbcr_to_rgb(float y, float cb, float cr) {
  const float r = y + 1.402f * (cr - 128.0f);
  const float g = y - 0.344136f * (cb - 128.0f) - 0.714136f * (cr - 128.0f);
  const float b = y + 1.772f * (cb - 128.0f);
  return {r, g, b};
}

YCbCrPlanes to_ycbcr(const Image& img) {
  YCbCrPlanes out;
  out.y = PlaneF(img.width(), img.height());
  out.cb = PlaneF(img.width(), img.height(), 128.0f);
  out.cr = PlaneF(img.width(), img.height(), 128.0f);
  if (img.channels() == 1) {
    for (int y = 0; y < img.height(); ++y)
      for (int x = 0; x < img.width(); ++x)
        out.y.at(x, y) = static_cast<float>(img.at(x, y, 0));
    return out;
  }
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const auto ycc = rgb_to_ycbcr(img.at(x, y, 0), img.at(x, y, 1), img.at(x, y, 2));
      out.y.at(x, y) = ycc[0];
      out.cb.at(x, y) = ycc[1];
      out.cr.at(x, y) = ycc[2];
    }
  }
  return out;
}

Image to_rgb(const YCbCrPlanes& planes, int width, int height) {
  if (planes.y.width() < width || planes.y.height() < height ||
      planes.cb.width() < width || planes.cb.height() < height ||
      planes.cr.width() < width || planes.cr.height() < height)
    throw std::invalid_argument("to_rgb: planes smaller than target size");
  Image img(width, height, 3);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const auto rgb = ycbcr_to_rgb(planes.y.at(x, y), planes.cb.at(x, y), planes.cr.at(x, y));
      img.at(x, y, 0) = clamp_u8(rgb[0]);
      img.at(x, y, 1) = clamp_u8(rgb[1]);
      img.at(x, y, 2) = clamp_u8(rgb[2]);
    }
  }
  return img;
}

}  // namespace dnj::image
