#include "image/color.hpp"

namespace dnj::image {

std::array<float, 3> rgb_to_ycbcr(float r, float g, float b) {
  const float y = 0.299f * r + 0.587f * g + 0.114f * b;
  const float cb = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
  const float cr = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
  return {y, cb, cr};
}

std::array<float, 3> ycbcr_to_rgb(float y, float cb, float cr) {
  const float r = y + 1.402f * (cr - 128.0f);
  const float g = y - 0.344136f * (cb - 128.0f) - 0.714136f * (cr - 128.0f);
  const float b = y + 1.772f * (cb - 128.0f);
  return {r, g, b};
}

YCbCrPlanes to_ycbcr(const Image& img) {
  YCbCrPlanes out;
  to_ycbcr_into(img, out);
  return out;
}

void to_ycbcr_into(const Image& img, YCbCrPlanes& out) {
  out.y.reset(img.width(), img.height());
  out.cb.reset(img.width(), img.height());
  out.cr.reset(img.width(), img.height());
  if (img.channels() == 1) {
    for (int y = 0; y < img.height(); ++y)
      for (int x = 0; x < img.width(); ++x) {
        out.y.at(x, y) = static_cast<float>(img.at(x, y, 0));
        out.cb.at(x, y) = 128.0f;
        out.cr.at(x, y) = 128.0f;
      }
    return;
  }
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const auto ycc = rgb_to_ycbcr(img.at(x, y, 0), img.at(x, y, 1), img.at(x, y, 2));
      out.y.at(x, y) = ycc[0];
      out.cb.at(x, y) = ycc[1];
      out.cr.at(x, y) = ycc[2];
    }
  }
}

Image to_rgb(const YCbCrPlanes& planes, int width, int height) {
  return to_rgb(planes.y, planes.cb, planes.cr, width, height);
}

Image to_rgb(const PlaneF& yp, const PlaneF& cb, const PlaneF& cr, int width, int height) {
  if (yp.width() < width || yp.height() < height || cb.width() < width ||
      cb.height() < height || cr.width() < width || cr.height() < height)
    throw std::invalid_argument("to_rgb: planes smaller than target size");
  Image img(width, height, 3);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const auto rgb = ycbcr_to_rgb(yp.at(x, y), cb.at(x, y), cr.at(x, y));
      img.at(x, y, 0) = clamp_u8(rgb[0]);
      img.at(x, y, 1) = clamp_u8(rgb[1]);
      img.at(x, y, 2) = clamp_u8(rgb[2]);
    }
  }
  return img;
}

}  // namespace dnj::image
