#include "image/color.hpp"

#include "simd/dispatch.hpp"

namespace dnj::image {

std::array<float, 3> rgb_to_ycbcr(float r, float g, float b) {
  const float y = 0.299f * r + 0.587f * g + 0.114f * b;
  const float cb = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
  const float cr = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
  return {y, cb, cr};
}

std::array<float, 3> ycbcr_to_rgb(float y, float cb, float cr) {
  const float r = y + 1.402f * (cr - 128.0f);
  const float g = y - 0.344136f * (cb - 128.0f) - 0.714136f * (cr - 128.0f);
  const float b = y + 1.772f * (cb - 128.0f);
  return {r, g, b};
}

YCbCrPlanes to_ycbcr(const Image& img) {
  YCbCrPlanes out;
  to_ycbcr_into(img, out);
  return out;
}

void to_ycbcr_into(PixelView img, YCbCrPlanes& out) {
  out.y.reset(img.width, img.height);
  out.cb.reset(img.width, img.height);
  out.cr.reset(img.width, img.height);
  if (img.channels == 1) {
    for (int y = 0; y < img.height; ++y)
      for (int x = 0; x < img.width; ++x) {
        out.y.at(x, y) = static_cast<float>(img.at(x, y, 0));
        out.cb.at(x, y) = 128.0f;
        out.cr.at(x, y) = 128.0f;
      }
    return;
  }
  // The interleaved pixel buffer and the three planes are contiguous and
  // congruent, so the whole image is one kernel call.
  simd::kernels().rgb_to_ycbcr(img.pixels, img.pixel_count(),
                               out.y.data().data(), out.cb.data().data(),
                               out.cr.data().data());
}

void to_ycbcr_into(const Image& img, YCbCrPlanes& out) {
  to_ycbcr_into(img.view(), out);
}

Image to_rgb(const YCbCrPlanes& planes, int width, int height) {
  return to_rgb(planes.y, planes.cb, planes.cr, width, height);
}

Image to_rgb(const PlaneF& yp, const PlaneF& cb, const PlaneF& cr, int width, int height) {
  if (yp.width() < width || yp.height() < height || cb.width() < width ||
      cb.height() < height || cr.width() < width || cr.height() < height)
    throw std::invalid_argument("to_rgb: planes smaller than target size");
  Image img(width, height, 3);
  // Planes may be wider than the image (block padding), so convert row by
  // row from each plane's row start.
  for (int y = 0; y < height; ++y)
    simd::kernels().ycbcr_to_rgb_row(
        yp.data().data() + static_cast<std::size_t>(y) * yp.width(),
        cb.data().data() + static_cast<std::size_t>(y) * cb.width(),
        cr.data().data() + static_cast<std::size_t>(y) * cr.width(), width,
        img.data().data() + static_cast<std::size_t>(y) * width * 3);
  return img;
}

}  // namespace dnj::image
