// Chroma resampling for 4:2:0 JPEG. Downsampling is a 2x2 box average (what
// libjpeg's default h2v2 downsampler computes); upsampling is bilinear with
// replicated edges, matching the "fancy upsampling" quality level closely
// enough for round-trip tests.
#pragma once

#include "image/image.hpp"

namespace dnj::image {

/// 2x2 box-average downsample. Odd trailing rows/columns are averaged over
/// the available samples. Output dims are ceil(w/2) x ceil(h/2).
PlaneF downsample_2x2(const PlaneF& plane);

/// Allocation-free variant: resizes `out` in place (reusing its buffer once
/// warm) and writes the same samples downsample_2x2 produces.
void downsample_2x2_into(const PlaneF& plane, PlaneF& out);

/// Bilinear 2x upsample to exactly (out_w, out_h), which must satisfy
/// ceil(out_w/2) == plane.width() and ceil(out_h/2) == plane.height().
PlaneF upsample_2x2(const PlaneF& plane, int out_w, int out_h);

/// Nearest-neighbour resize to arbitrary dimensions (used by the dataset
/// generator, not the codec).
PlaneF resize_nearest(const PlaneF& plane, int out_w, int out_h);

}  // namespace dnj::image
