#include "image/io.hpp"

#include <fstream>
#include <sstream>

namespace dnj::image {

namespace {

// Skips whitespace and '#' comment lines between PNM header tokens.
void skip_ws_and_comments(std::istream& in) {
  for (;;) {
    int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      return;
    }
  }
}

int read_header_int(std::istream& in) {
  skip_ws_and_comments(in);
  int v = 0;
  if (!(in >> v)) throw std::runtime_error("read_pnm: malformed header");
  return v;
}

}  // namespace

void write_pnm(const Image& img, const std::string& path) {
  if (img.empty()) throw std::runtime_error("write_pnm: empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pnm: cannot open " + path);
  out << (img.channels() == 1 ? "P5" : "P6") << "\n"
      << img.width() << " " << img.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.data().data()),
            static_cast<std::streamsize>(img.data().size()));
  if (!out) throw std::runtime_error("write_pnm: write failed for " + path);
}

Image read_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pnm: cannot open " + path);
  std::string magic;
  in >> magic;
  int channels = 0;
  if (magic == "P5")
    channels = 1;
  else if (magic == "P6")
    channels = 3;
  else
    throw std::runtime_error("read_pnm: unsupported magic " + magic);
  const int w = read_header_int(in);
  const int h = read_header_int(in);
  const int maxval = read_header_int(in);
  if (maxval != 255) throw std::runtime_error("read_pnm: only maxval 255 supported");
  in.get();  // single whitespace after maxval
  Image img(w, h, channels);
  in.read(reinterpret_cast<char*>(img.data().data()),
          static_cast<std::streamsize>(img.data().size()));
  if (in.gcount() != static_cast<std::streamsize>(img.data().size()))
    throw std::runtime_error("read_pnm: truncated pixel data in " + path);
  return img;
}

}  // namespace dnj::image
