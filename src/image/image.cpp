#include "image/image.hpp"

#include <algorithm>
#include <cmath>

#include "simd/dispatch.hpp"

namespace dnj::image {

std::uint8_t clamp_u8(float v) {
  const float r = std::nearbyint(v);
  if (r <= 0.0f) return 0;
  if (r >= 255.0f) return 255;
  return static_cast<std::uint8_t>(r);
}

PlaneF to_plane(const Image& img, int c) {
  PlaneF p;
  to_plane_into(img, c, p);
  return p;
}

void to_plane_into(const Image& img, int c, PlaneF& out) {
  if (c < 0 || c >= img.channels())
    throw std::invalid_argument("to_plane: channel out of range");
  out.reset(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      out.at(x, y) = static_cast<float>(img.at(x, y, c));
}

void from_plane(const PlaneF& plane, Image& img, int c) {
  if (c < 0 || c >= img.channels())
    throw std::invalid_argument("from_plane: channel out of range");
  if (plane.width() < img.width() || plane.height() < img.height())
    throw std::invalid_argument("from_plane: plane smaller than image");
  if (img.channels() == 1) {
    // Grayscale rows are unit-stride on both sides — the decode hot path.
    for (int y = 0; y < img.height(); ++y)
      simd::kernels().f32_to_u8_row(
          plane.data().data() + static_cast<std::size_t>(y) * plane.width(),
          img.width(), img.data().data() + static_cast<std::size_t>(y) * img.width());
    return;
  }
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      img.at(x, y, c) = clamp_u8(plane.at(x, y));
}

}  // namespace dnj::image
