#include "image/blocks.hpp"

#include <algorithm>

namespace dnj::image {

int padded_dim(int n) { return (n + kBlockDim - 1) / kBlockDim * kBlockDim; }

PlaneF pad_to_blocks(const PlaneF& plane) {
  const int pw = padded_dim(plane.width());
  const int ph = padded_dim(plane.height());
  if (pw == plane.width() && ph == plane.height()) return plane;
  PlaneF out(pw, ph);
  for (int y = 0; y < ph; ++y) {
    const int sy = std::min(y, plane.height() - 1);
    for (int x = 0; x < pw; ++x) {
      const int sx = std::min(x, plane.width() - 1);
      out.at(x, y) = plane.at(sx, sy);
    }
  }
  return out;
}

std::vector<BlockF> split_blocks(const PlaneF& plane, int* blocks_x, int* blocks_y) {
  const PlaneF padded = pad_to_blocks(plane);
  const int bx = padded.width() / kBlockDim;
  const int by = padded.height() / kBlockDim;
  if (blocks_x) *blocks_x = bx;
  if (blocks_y) *blocks_y = by;
  std::vector<BlockF> blocks(static_cast<std::size_t>(bx) * by);
  for (int byi = 0; byi < by; ++byi) {
    for (int bxi = 0; bxi < bx; ++bxi) {
      BlockF& blk = blocks[static_cast<std::size_t>(byi) * bx + bxi];
      for (int y = 0; y < kBlockDim; ++y)
        for (int x = 0; x < kBlockDim; ++x)
          blk[y * kBlockDim + x] = padded.at(bxi * kBlockDim + x, byi * kBlockDim + y);
    }
  }
  return blocks;
}

PlaneF merge_blocks(const std::vector<BlockF>& blocks, int blocks_x, int blocks_y) {
  if (blocks.size() != static_cast<std::size_t>(blocks_x) * blocks_y)
    throw std::invalid_argument("merge_blocks: grid does not match block count");
  PlaneF out(blocks_x * kBlockDim, blocks_y * kBlockDim);
  for (int byi = 0; byi < blocks_y; ++byi) {
    for (int bxi = 0; bxi < blocks_x; ++bxi) {
      const BlockF& blk = blocks[static_cast<std::size_t>(byi) * blocks_x + bxi];
      for (int y = 0; y < kBlockDim; ++y)
        for (int x = 0; x < kBlockDim; ++x)
          out.at(bxi * kBlockDim + x, byi * kBlockDim + y) = blk[y * kBlockDim + x];
    }
  }
  return out;
}

void level_shift(BlockF& block) {
  for (float& v : block) v -= 128.0f;
}

void level_unshift(BlockF& block) {
  for (float& v : block) v += 128.0f;
}

void tile_blocks_into(const PlaneF& plane, int grid_bx, int grid_by, float* dst,
                      float bias) {
  const int w = plane.width();
  const int h = plane.height();
  const float* src = plane.data().data();
  // Blocks fully inside the plane take the fast row-copy path; blocks that
  // touch the right/bottom edge replicate the last row/column.
  const int full_bx = w / kBlockDim;  // blocks with all 8 columns in-plane
  const int full_by = h / kBlockDim;
  for (int by = 0; by < grid_by; ++by) {
    for (int bx = 0; bx < grid_bx; ++bx) {
      float* blk = dst + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      if (bx < full_bx && by < full_by) {
        const float* row = src + static_cast<std::size_t>(by) * kBlockDim * w +
                           static_cast<std::size_t>(bx) * kBlockDim;
        for (int y = 0; y < kBlockDim; ++y, row += w, blk += kBlockDim)
          for (int x = 0; x < kBlockDim; ++x) blk[x] = row[x] + bias;
      } else {
        for (int y = 0; y < kBlockDim; ++y) {
          const int sy = std::min(by * kBlockDim + y, h - 1);
          const float* row = src + static_cast<std::size_t>(sy) * w;
          for (int x = 0; x < kBlockDim; ++x)
            blk[y * kBlockDim + x] = row[std::min(bx * kBlockDim + x, w - 1)] + bias;
        }
      }
    }
  }
}

void tile_image_blocks_into(const Image& img, int c, int grid_bx, int grid_by,
                            float* dst, float bias) {
  const int w = img.width();
  const int h = img.height();
  const int ch = img.channels();
  if (c < 0 || c >= ch)
    throw std::invalid_argument("tile_image_blocks_into: channel out of range");
  const std::uint8_t* src = img.data().data() + c;
  const std::size_t row_stride = static_cast<std::size_t>(w) * ch;
  const int full_bx = w / kBlockDim;
  const int full_by = h / kBlockDim;
  for (int by = 0; by < grid_by; ++by) {
    for (int bx = 0; bx < grid_bx; ++bx) {
      float* blk = dst + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      if (bx < full_bx && by < full_by) {
        const std::uint8_t* row = src + static_cast<std::size_t>(by) * kBlockDim * row_stride +
                                  static_cast<std::size_t>(bx) * kBlockDim * ch;
        for (int y = 0; y < kBlockDim; ++y, row += row_stride, blk += kBlockDim)
          for (int x = 0; x < kBlockDim; ++x)
            blk[x] = static_cast<float>(row[static_cast<std::size_t>(x) * ch]) + bias;
      } else {
        for (int y = 0; y < kBlockDim; ++y) {
          const int sy = std::min(by * kBlockDim + y, h - 1);
          const std::uint8_t* row = src + static_cast<std::size_t>(sy) * row_stride;
          for (int x = 0; x < kBlockDim; ++x) {
            const int sx = std::min(bx * kBlockDim + x, w - 1);
            blk[y * kBlockDim + x] =
                static_cast<float>(row[static_cast<std::size_t>(sx) * ch]) + bias;
          }
        }
      }
    }
  }
}

void untile_blocks_from(const float* src, int grid_bx, int grid_by, PlaneF& plane,
                        float bias) {
  const int w = plane.width();
  const int h = plane.height();
  if (w > grid_bx * kBlockDim || h > grid_by * kBlockDim)
    throw std::invalid_argument("untile_blocks_from: plane exceeds block grid");
  float* dst = plane.data().data();
  for (int by = 0; by * kBlockDim < h; ++by) {
    const int ny = std::min(kBlockDim, h - by * kBlockDim);
    for (int bx = 0; bx * kBlockDim < w; ++bx) {
      const int nx = std::min(kBlockDim, w - bx * kBlockDim);
      const float* blk = src + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      for (int y = 0; y < ny; ++y) {
        float* row = dst + static_cast<std::size_t>(by * kBlockDim + y) * w +
                     static_cast<std::size_t>(bx) * kBlockDim;
        for (int x = 0; x < nx; ++x) row[x] = blk[y * kBlockDim + x] + bias;
      }
    }
  }
}

}  // namespace dnj::image
