#include "image/blocks.hpp"

#include <algorithm>

#include "simd/dispatch.hpp"

namespace dnj::image {

int padded_dim(int n) { return (n + kBlockDim - 1) / kBlockDim * kBlockDim; }

PlaneF pad_to_blocks(const PlaneF& plane) {
  const int pw = padded_dim(plane.width());
  const int ph = padded_dim(plane.height());
  if (pw == plane.width() && ph == plane.height()) return plane;
  PlaneF out(pw, ph);
  for (int y = 0; y < ph; ++y) {
    const int sy = std::min(y, plane.height() - 1);
    for (int x = 0; x < pw; ++x) {
      const int sx = std::min(x, plane.width() - 1);
      out.at(x, y) = plane.at(sx, sy);
    }
  }
  return out;
}

std::vector<BlockF> split_blocks(const PlaneF& plane, int* blocks_x, int* blocks_y) {
  const PlaneF padded = pad_to_blocks(plane);
  const int bx = padded.width() / kBlockDim;
  const int by = padded.height() / kBlockDim;
  if (blocks_x) *blocks_x = bx;
  if (blocks_y) *blocks_y = by;
  std::vector<BlockF> blocks(static_cast<std::size_t>(bx) * by);
  for (int byi = 0; byi < by; ++byi) {
    for (int bxi = 0; bxi < bx; ++bxi) {
      BlockF& blk = blocks[static_cast<std::size_t>(byi) * bx + bxi];
      for (int y = 0; y < kBlockDim; ++y)
        for (int x = 0; x < kBlockDim; ++x)
          blk[y * kBlockDim + x] = padded.at(bxi * kBlockDim + x, byi * kBlockDim + y);
    }
  }
  return blocks;
}

PlaneF merge_blocks(const std::vector<BlockF>& blocks, int blocks_x, int blocks_y) {
  if (blocks.size() != static_cast<std::size_t>(blocks_x) * blocks_y)
    throw std::invalid_argument("merge_blocks: grid does not match block count");
  PlaneF out(blocks_x * kBlockDim, blocks_y * kBlockDim);
  for (int byi = 0; byi < blocks_y; ++byi) {
    for (int bxi = 0; bxi < blocks_x; ++bxi) {
      const BlockF& blk = blocks[static_cast<std::size_t>(byi) * blocks_x + bxi];
      for (int y = 0; y < kBlockDim; ++y)
        for (int x = 0; x < kBlockDim; ++x)
          out.at(bxi * kBlockDim + x, byi * kBlockDim + y) = blk[y * kBlockDim + x];
    }
  }
  return out;
}

void level_shift(BlockF& block) {
  for (float& v : block) v -= 128.0f;
}

void level_unshift(BlockF& block) {
  for (float& v : block) v += 128.0f;
}

void tile_blocks_into(const PlaneF& plane, int grid_bx, int grid_by, float* dst,
                      float bias) {
  simd::kernels().tile_f32(plane.data().data(), plane.width(), plane.height(), grid_bx,
                           grid_by, dst, bias);
}

void tile_image_blocks_into(PixelView img, int c, int grid_bx, int grid_by,
                            float* dst, float bias) {
  if (c < 0 || c >= img.channels)
    throw std::invalid_argument("tile_image_blocks_into: channel out of range");
  simd::kernels().tile_u8(img.pixels + c, img.width, img.height,
                          img.channels, grid_bx, grid_by, dst, bias);
}

void tile_image_blocks_into(const Image& img, int c, int grid_bx, int grid_by,
                            float* dst, float bias) {
  tile_image_blocks_into(img.view(), c, grid_bx, grid_by, dst, bias);
}

void untile_blocks_from(const float* src, int grid_bx, int grid_by, PlaneF& plane,
                        float bias) {
  if (plane.width() > grid_bx * kBlockDim || plane.height() > grid_by * kBlockDim)
    throw std::invalid_argument("untile_blocks_from: plane exceeds block grid");
  simd::kernels().untile_f32(src, grid_bx, grid_by, plane.data().data(), plane.width(),
                             plane.height(), bias);
}

}  // namespace dnj::image
