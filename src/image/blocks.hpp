// 8x8 block partitioning used by the JPEG pipeline and by Algorithm 1 of the
// paper (frequency component analysis). Planes whose dimensions are not
// multiples of 8 are padded by edge replication, which is the standard JPEG
// convention and avoids injecting artificial high-frequency energy at the
// border.
#pragma once

#include <array>
#include <vector>

#include "image/image.hpp"

namespace dnj::image {

inline constexpr int kBlockDim = 8;
inline constexpr int kBlockSize = kBlockDim * kBlockDim;

/// One 8x8 block of float samples in row-major order.
using BlockF = std::array<float, kBlockSize>;

/// Rounds `n` up to the next multiple of 8.
int padded_dim(int n);

/// Pads a plane to multiple-of-8 dimensions by replicating the last row and
/// column. Returns the input unchanged when already aligned.
PlaneF pad_to_blocks(const PlaneF& plane);

/// Splits a plane into row-major 8x8 blocks. The plane is padded internally
/// if needed; blocks_x/blocks_y receive the grid dimensions when non-null.
std::vector<BlockF> split_blocks(const PlaneF& plane, int* blocks_x = nullptr,
                                 int* blocks_y = nullptr);

/// Inverse of split_blocks: reassembles a plane of size (blocks_x*8,
/// blocks_y*8) from a row-major block list.
PlaneF merge_blocks(const std::vector<BlockF>& blocks, int blocks_x, int blocks_y);

/// Applies the JPEG level shift (x - 128) in place.
void level_shift(BlockF& block);

/// Undoes the level shift (x + 128) in place.
void level_unshift(BlockF& block);

// ---------------------------------------------------------------------------
// Zero-allocation tiling primitives (the codec-pipeline hot path).
//
// Blocks are stored contiguously with a stride of kBlockSize floats: block
// (bx, by) of a (grid_bx, grid_by) grid lives at
//   dst[(by * grid_bx + bx) * kBlockSize]
// in row-major sample order. The grid may be larger than the padded plane
// (4:2:0 luma pads to even MCU multiples); out-of-plane samples are filled
// by edge replication, exactly like pad_to_blocks. `bias` is added to every
// sample, so passing -128 fuses the JPEG level shift into the tiling pass.

/// Tiles `plane` into `grid_bx * grid_by` 8x8 blocks at `dst` (which must
/// hold grid_bx * grid_by * kBlockSize floats). No allocation.
void tile_blocks_into(const PlaneF& plane, int grid_bx, int grid_by, float* dst,
                      float bias = 0.0f);

/// Tiles channel `c` of `img` directly into the block grid, fusing the
/// u8 -> float conversion (and `bias`, i.e. the level shift) into the
/// tiling pass — the grayscale encode path skips the intermediate PlaneF
/// entirely. Same layout and replication semantics as tile_blocks_into.
/// The PixelView form is the primary (the encoder reads images through
/// views); the Image overload forwards.
void tile_image_blocks_into(PixelView img, int c, int grid_bx, int grid_by,
                            float* dst, float bias = 0.0f);
void tile_image_blocks_into(const Image& img, int c, int grid_bx, int grid_by,
                            float* dst, float bias = 0.0f);

/// Inverse of tile_blocks_into: writes the top-left plane.width() x
/// plane.height() samples of the block grid back into `plane`, adding
/// `bias` (pass +128 to undo the level shift). No allocation.
void untile_blocks_from(const float* src, int grid_bx, int grid_by, PlaneF& plane,
                        float bias = 0.0f);

}  // namespace dnj::image
