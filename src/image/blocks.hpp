// 8x8 block partitioning used by the JPEG pipeline and by Algorithm 1 of the
// paper (frequency component analysis). Planes whose dimensions are not
// multiples of 8 are padded by edge replication, which is the standard JPEG
// convention and avoids injecting artificial high-frequency energy at the
// border.
#pragma once

#include <array>
#include <vector>

#include "image/image.hpp"

namespace dnj::image {

inline constexpr int kBlockDim = 8;
inline constexpr int kBlockSize = kBlockDim * kBlockDim;

/// One 8x8 block of float samples in row-major order.
using BlockF = std::array<float, kBlockSize>;

/// Rounds `n` up to the next multiple of 8.
int padded_dim(int n);

/// Pads a plane to multiple-of-8 dimensions by replicating the last row and
/// column. Returns the input unchanged when already aligned.
PlaneF pad_to_blocks(const PlaneF& plane);

/// Splits a plane into row-major 8x8 blocks. The plane is padded internally
/// if needed; blocks_x/blocks_y receive the grid dimensions when non-null.
std::vector<BlockF> split_blocks(const PlaneF& plane, int* blocks_x = nullptr,
                                 int* blocks_y = nullptr);

/// Inverse of split_blocks: reassembles a plane of size (blocks_x*8,
/// blocks_y*8) from a row-major block list.
PlaneF merge_blocks(const std::vector<BlockF>& blocks, int blocks_x, int blocks_y);

/// Applies the JPEG level shift (x - 128) in place.
void level_shift(BlockF& block);

/// Undoes the level shift (x + 128) in place.
void level_unshift(BlockF& block);

}  // namespace dnj::image
