#include "power/energy_model.hpp"

#include <stdexcept>

namespace dnj::power {

namespace {
// Bandwidth implied by uploading 152 KB in the given latency.
double anchor_mbps(double seconds) { return 152.0 * 1024.0 * 8.0 / seconds / 1e6; }
}  // namespace

RadioProfile RadioProfile::cellular_3g() {
  return {"3G", anchor_mbps(0.870), 1.2};  // ~1.43 Mbps, ~1.2 W (Huang et al.)
}

RadioProfile RadioProfile::lte() {
  return {"LTE", anchor_mbps(0.180), 2.0};  // ~6.9 Mbps, ~2.0 W
}

RadioProfile RadioProfile::wifi() {
  return {"WiFi", anchor_mbps(0.095), 1.0};  // ~13.1 Mbps, ~1.0 W
}

double EnergyModel::transfer_seconds(std::size_t bytes) const {
  if (radio.mbps <= 0.0) throw std::invalid_argument("EnergyModel: bad bandwidth");
  return static_cast<double>(bytes) * 8.0 / (radio.mbps * 1e6);
}

double EnergyModel::transfer_joules(std::size_t bytes) const {
  return transfer_seconds(bytes) * radio.tx_watts;
}

double EnergyModel::encode_joules(std::size_t pixels) const {
  return static_cast<double>(pixels) * encode_nj_per_pixel * 1e-9;
}

double EnergyModel::offload_joules(std::size_t bytes, std::size_t pixels,
                                   bool compressed) const {
  return transfer_joules(bytes) + (compressed ? encode_joules(pixels) : 0.0);
}

double normalized_power(const EnergyModel& model, std::size_t method_bytes,
                        std::size_t baseline_bytes, std::size_t pixels) {
  const double method = model.offload_joules(method_bytes, pixels, true);
  const double baseline = model.offload_joules(baseline_bytes, pixels, true);
  if (baseline <= 0.0) throw std::invalid_argument("normalized_power: zero baseline");
  return method / baseline;
}

}  // namespace dnj::power
