// Analytic data-offloading energy model in the style of Neurosurgeon
// (Kang et al., ASPLOS 2017), which the paper uses for its Fig. 9 power
// comparison. Offload energy for an edge device is dominated by radio
// transmit time:
//
//   E_offload = bytes * 8 / bandwidth * P_tx   +   E_encode
//
// Radio parameters are derived from the paper's own latency anchor (a 152 KB
// image uploads in 870 ms over 3G, 180 ms over LTE, 95 ms over Wi-Fi) and
// typical radio transmit powers from the mobile-energy literature.
#pragma once

#include <cstddef>
#include <string>

namespace dnj::power {

struct RadioProfile {
  std::string name;
  double mbps = 10.0;      ///< sustained uplink throughput
  double tx_watts = 1.0;   ///< radio power while transmitting

  /// Derived from the paper's 152 KB / 870 ms anchor.
  static RadioProfile cellular_3g();
  /// 152 KB / 180 ms.
  static RadioProfile lte();
  /// 152 KB / 95 ms.
  static RadioProfile wifi();
};

struct EnergyModel {
  RadioProfile radio = RadioProfile::wifi();
  /// JPEG encode compute energy per input pixel (DCT+quant+entropy on a
  /// low-power core). DeepN-JPEG and JPEG share this cost exactly — the
  /// datapath is identical, only table contents differ.
  double encode_nj_per_pixel = 5.0;

  /// Seconds to upload `bytes` on the configured radio.
  double transfer_seconds(std::size_t bytes) const;
  /// Radio energy to upload `bytes`.
  double transfer_joules(std::size_t bytes) const;
  /// Compute energy to encode `pixels` pixels.
  double encode_joules(std::size_t pixels) const;
  /// Total offload energy: encode (if `compressed`) plus transfer.
  double offload_joules(std::size_t bytes, std::size_t pixels, bool compressed) const;
};

/// Power consumption of a method normalized against the baseline method
/// (the paper's Fig. 9 y-axis): ratio of offload energies for the same
/// pixel payload.
double normalized_power(const EnergyModel& model, std::size_t method_bytes,
                        std::size_t baseline_bytes, std::size_t pixels);

}  // namespace dnj::power
