#!/usr/bin/env python3
"""Convert a DNJ span-trace dump to the Chrome trace-event format.

The input is the JSON document produced by the tracer (any of: the wire
`stats` op with format=2, api::Service::dump_trace(), or
dnj_server_trace_dump): {"clock": "steady_ns", "sample_every": N,
"spans": [{trace, span, parent, stage, thread, start_ns, end_ns, tag}]}.

The output is a chrome://tracing / Perfetto-compatible event array:
complete ("X") events with microsecond timestamps, one process per trace
id and one thread row per tracer ring, so a request's nested stages
(net_read -> queue_wait -> batch -> codec stages -> net_write) render as
a flame graph per request.

Usage:
    tools/trace2chrome.py dump.json -o trace.json
    dnj_client --scrape-trace | tools/trace2chrome.py > trace.json

Load the result via chrome://tracing "Load" or https://ui.perfetto.dev.
"""

import argparse
import json
import sys


def convert(doc):
    spans = doc.get("spans", [])
    events = []
    for s in spans:
        start_ns = int(s["start_ns"])
        end_ns = int(s["end_ns"])
        events.append({
            "name": s.get("stage", "span"),
            "ph": "X",
            "ts": start_ns / 1000.0,
            "dur": max(end_ns - start_ns, 0) / 1000.0,
            "pid": int(s.get("trace", 0)),
            "tid": int(s.get("thread", 0)),
            "args": {
                "span": int(s.get("span", 0)),
                "parent": int(s.get("parent", 0)),
                "tag": int(s.get("tag", 0)),
            },
        })
    # Name each per-trace "process" so the tracing UI labels rows usefully.
    for pid in sorted({e["pid"] for e in events}):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"trace {pid}"},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": doc.get("clock", "steady_ns"),
            "sample_every": doc.get("sample_every", 0),
        },
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", nargs="?", default="-",
                    help="trace dump JSON (default: stdin)")
    ap.add_argument("-o", "--output", default="-",
                    help="chrome trace JSON destination (default: stdout)")
    args = ap.parse_args()

    try:
        if args.input == "-":
            doc = json.load(sys.stdin)
        else:
            with open(args.input) as f:
                doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace2chrome: cannot read trace dump: {e}", file=sys.stderr)
        return 2

    if "spans" not in doc:
        print("trace2chrome: input has no \"spans\" array — is this a "
              "tracer dump?", file=sys.stderr)
        return 2

    out = convert(doc)
    n = sum(1 for e in out["traceEvents"] if e["ph"] == "X")
    if args.output == "-":
        json.dump(out, sys.stdout)
        sys.stdout.write("\n")
    else:
        with open(args.output, "w") as f:
            json.dump(out, f)
            f.write("\n")
        print(f"trace2chrome: wrote {n} spans to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
