#!/usr/bin/env python3
"""Scrape a running DNJ network server's metrics over the wire.

A minimal foreign client for the kStats admin op (protocol v3, see
docs/PROTOCOL.md): connect, send one stats request, print the UTF-8 text
the server returns. Pure standard library — socket + struct + zlib — so
it runs anywhere CI can run Python, and doubles as executable
documentation of the byte layout a non-C++ client needs.

Usage:
    tools/scrape_stats.py [--host 127.0.0.1] --port 9090 [--format prometheus]

Formats: prometheus (default), json, trace (the span dump).
Exit status: 0 on a kOk response, 1 on any protocol or socket failure.
"""

import argparse
import socket
import struct
import sys
import zlib

MAGIC = 0x314A4E44  # "DNJ1" little-endian
VERSION = 3         # v3 adds the job ops; kStats itself dates to v2
TYPE_REQUEST = 1
TYPE_RESPONSE = 2
OP_STATS = 6
HEADER = struct.Struct("<IBBBBIQII")  # magic ver type op status req_id digest size crc

FORMATS = {"prometheus": 0, "json": 1, "trace": 2}


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("server closed the connection mid-frame")
        buf += chunk
    return buf


def scrape(host, port, fmt, timeout):
    payload = bytes([FORMATS[fmt]])
    header = HEADER.pack(MAGIC, VERSION, TYPE_REQUEST, OP_STATS, 0, 1, 0,
                         len(payload), zlib.crc32(payload))
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(header + payload)
        magic, ver, ftype, op, status, req_id, digest, size, crc = HEADER.unpack(
            recv_exact(sock, HEADER.size))
        if magic != MAGIC or ftype != TYPE_RESPONSE or op != OP_STATS or req_id != 1:
            raise ValueError(f"unexpected response header: magic={magic:#x} "
                             f"type={ftype} op={op} request_id={req_id}")
        body = recv_exact(sock, size)
        if zlib.crc32(body) != crc:
            raise ValueError("response payload CRC mismatch")
        if status != 0:
            raise ValueError(f"server answered wire status {status}: "
                             f"{body.decode('utf-8', 'replace')}")
        return body.decode("utf-8")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--format", choices=sorted(FORMATS), default="prometheus")
    ap.add_argument("--timeout", type=float, default=5.0)
    args = ap.parse_args()
    try:
        sys.stdout.write(scrape(args.host, args.port, args.format, args.timeout))
    except (OSError, ValueError, ConnectionError) as e:
        print(f"scrape_stats: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
