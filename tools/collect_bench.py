#!/usr/bin/env python3
"""Collect bench results into the repo-root BENCH_<family>.json trajectory.

The bench binaries write bench_results/BENCH_*.json under the working
directory; CI uploads that directory as an artifact but nothing promoted
the numbers into the repository tree, so the committed perf trajectory
sat empty. This script copies each expected result to the repository
root (where check_bench_regression baselines and readers expect it),
validating along the way that the file parses and self-identifies with
the right "bench" family field.

Exit status: 0 = every expected family collected, 1 = at least one
missing/invalid (each is listed on stderr).

Usage:
    tools/collect_bench.py                      # after running the benches
    tools/collect_bench.py --expect serve,net   # subset for a quick run
"""

import argparse
import json
import os
import shutil
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_FAMILIES = "codec_pipeline,serve,multitenant,net,design"


def collect(family, results_dir, dest_dir):
    name = f"BENCH_{family}.json"
    src = os.path.join(results_dir, name)
    try:
        with open(src) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return f"{name}: cannot read result: {e}"
    tagged = doc.get("bench")
    if tagged != family:
        return (f"{name}: \"bench\" field is {tagged!r}, expected "
                f"{family!r} — wrong or mislabeled result")
    os.makedirs(dest_dir, exist_ok=True)
    dest = os.path.join(dest_dir, name)
    shutil.copyfile(src, dest)
    print(f"collected {src} -> {dest}")
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--results-dir", default="bench_results",
                    help="directory the bench binaries wrote into")
    ap.add_argument("--dest", default=REPO_ROOT,
                    help="destination directory (default: repository root)")
    ap.add_argument("--expect", default=DEFAULT_FAMILIES,
                    help="comma-separated bench families that must be present")
    args = ap.parse_args()

    failures = []
    for family in [f for f in args.expect.split(",") if f]:
        err = collect(family, args.results_dir, args.dest)
        if err:
            failures.append(err)

    for err in failures:
        print(f"collect_bench: {err}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
