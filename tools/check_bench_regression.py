#!/usr/bin/env python3
"""Advisory perf regression check for the BENCH_*.json baseline files.

Compares a fresh bench result against the committed baseline under
bench/baselines/ and warns when a tracked throughput number regressed by
more than the threshold. The bench family is read from the result's own
"bench" field (results without one are the entropy-stage pipeline bench,
which predates the field), so one script serves every baseline:

  codec_pipeline — entropy encode/decode stage throughput (Mblocks/s)
  serve          — per-scenario served requests/s
  multitenant    — per-scenario served requests/s
  net            — per-level goodput requests/s over the wire
  design         — table-design job throughput (SA iterations/s)

Advisory by design: shared CI runners are noisy enough that a hard gate
would cry wolf — the CI step runs with continue-on-error, and a *trend*
of warnings across PRs is the actionable signal. The determinism gates
(streams_identical / all_identical / ...) are the exception: those are
hard requirements, and a false gate is an error, not an advisory.

Exit status: 0 = no regression, 1 = at least one metric regressed,
2 = inputs unusable (missing file, malformed JSON, gate field false,
unknown bench family).

Usage:
    tools/check_bench_regression.py <fresh.json> [<baseline.json>] [--threshold 0.20]
"""

import argparse
import json
import os
import sys

BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baselines")


def pipeline_metrics(doc):
    """Entropy-stage throughput rows (Mblocks/s, higher is better)."""
    tracked = [
        ("encode entropy", "stages", "entropy", "mblocks_per_s"),
        ("decode huffman", "decode_stages", "huffman_decode", "mblocks_per_s"),
    ]
    out = []
    for label, array_key, stage_name, field in tracked:
        for row in doc.get(array_key, []):
            if row.get("stage") == stage_name and row.get(field):
                out.append((label, float(row[field]), "Mblocks/s"))
    return out


def scenario_rps_metrics(doc):
    """One requests/s metric per scenario row (higher is better)."""
    out = []
    for row in doc.get("rows", []):
        name, rps = row.get("scenario"), row.get("rps")
        if name and rps:
            out.append((f"{name} throughput", float(rps), "req/s"))
    return out


def level_goodput_metrics(doc):
    """One goodput metric per offered-load level (higher is better)."""
    out = []
    for row in doc.get("levels", []):
        name, goodput = row.get("name"), row.get("goodput_rps")
        if name and goodput:
            out.append((f"{name} goodput", float(goodput), "req/s"))
    return out


def design_metrics(doc):
    """Design-job throughput (SA iterations/s, higher is better)."""
    out = []
    if doc.get("sa_iters_per_s"):
        out.append(("design throughput", float(doc["sa_iters_per_s"]), "SA iters/s"))
    return out


# bench-field value -> (baseline filename, hard gate fields, metric extractor)
FAMILIES = {
    "codec_pipeline": ("BENCH_codec_pipeline.json",
                       ("streams_identical", "restart_identical"),
                       pipeline_metrics),
    "serve": ("BENCH_serve.json", ("all_identical",), scenario_rps_metrics),
    "multitenant": ("BENCH_multitenant.json", ("all_identical",),
                    scenario_rps_metrics),
    "net": ("BENCH_net.json", ("all_identical", "scrape_ok"),
            level_goodput_metrics),
    "design": ("BENCH_design.json", ("resume_identical", "rate_ok"),
               design_metrics),
}


def warn(msg):
    # ::warning:: renders as an annotation on GitHub; plain text elsewhere.
    print(f"::warning::{msg}" if os.environ.get("GITHUB_ACTIONS") else f"WARNING: {msg}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated BENCH_*.json")
    ap.add_argument("baseline", nargs="?", default=None,
                    help="baseline JSON (default: the bench/baselines/ file "
                         "for the fresh result's bench family)")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional slowdown that counts as a regression")
    args = ap.parse_args()

    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read fresh result: {e}", file=sys.stderr)
        return 2

    family = fresh.get("bench", "codec_pipeline")
    if family not in FAMILIES:
        print(f"check_bench_regression: unknown bench family {family!r}", file=sys.stderr)
        return 2
    baseline_name, gates, extract = FAMILIES[family]

    baseline_path = args.baseline or os.path.join(BASELINE_DIR, baseline_name)
    try:
        with open(baseline_path) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read baseline: {e}", file=sys.stderr)
        return 2

    # The determinism gates are hard requirements, not perf advisories.
    for gate in gates:
        if fresh.get(gate) is False:
            print(f"check_bench_regression: {gate} is false — determinism "
                  "violation, not a perf question", file=sys.stderr)
            return 2

    base_values = {label: (value, unit) for label, value, unit in extract(base)}
    fresh_metrics = extract(fresh)
    if not fresh_metrics:
        warn(f"{family}: no tracked metrics in fresh JSON, nothing checked")
        return 0

    regressed = False
    for label, fresh_v, unit in fresh_metrics:
        if label not in base_values:
            warn(f"{label}: missing from baseline JSON, skipped")
            continue
        base_v, _ = base_values[label]
        ratio = fresh_v / base_v
        line = f"{label}: {fresh_v:.2f} vs baseline {base_v:.2f} {unit} ({ratio:.2f}x)"
        if ratio < 1.0 - args.threshold:
            warn(f"perf regression, {line}")
            regressed = True
        else:
            print(f"ok: {line}")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
