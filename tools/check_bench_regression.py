#!/usr/bin/env python3
"""Advisory entropy-stage perf regression check.

Compares a fresh BENCH_codec_pipeline.json against the committed baseline
(bench/baselines/BENCH_codec_pipeline.json) and warns when an entropy row
regressed by more than the threshold. Advisory by design: shared CI
runners are noisy enough that a hard gate would cry wolf — the CI step
runs with continue-on-error, and a *trend* of warnings across PRs is the
actionable signal.

Exit status: 0 = no regression, 1 = at least one row regressed,
2 = inputs unusable (missing file, malformed JSON, gate field false).

Usage:
    tools/check_bench_regression.py <fresh.json> [<baseline.json>] [--threshold 0.20]
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baselines", "BENCH_codec_pipeline.json")

# (human label, path to the throughput value). Higher is better for all.
TRACKED = [
    ("encode entropy", ("stages", "entropy", "mblocks_per_s")),
    ("decode huffman", ("decode_stages", "huffman_decode", "mblocks_per_s")),
]


def stage_value(doc, spec):
    array_key, stage_name, field = spec
    for row in doc.get(array_key, []):
        if row.get("stage") == stage_name:
            return row.get(field)
    return None


def warn(msg):
    # ::warning:: renders as an annotation on GitHub; plain text elsewhere.
    print(f"::warning::{msg}" if os.environ.get("GITHUB_ACTIONS") else f"WARNING: {msg}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated BENCH_codec_pipeline.json")
    ap.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE)
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional slowdown that counts as a regression")
    args = ap.parse_args()

    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
        with open(args.baseline) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read inputs: {e}", file=sys.stderr)
        return 2

    # The determinism gates are hard requirements, not perf advisories.
    for gate in ("streams_identical", "restart_identical"):
        if fresh.get(gate) is False:
            print(f"check_bench_regression: {gate} is false — determinism "
                  "violation, not a perf question", file=sys.stderr)
            return 2

    regressed = False
    for label, spec in TRACKED:
        fresh_v = stage_value(fresh, spec)
        base_v = stage_value(base, spec)
        if not fresh_v or not base_v:
            warn(f"{label}: row missing from fresh or baseline JSON, skipped")
            continue
        ratio = fresh_v / base_v
        line = (f"{label}: {fresh_v:.2f} vs baseline {base_v:.2f} Mblocks/s "
                f"({ratio:.2f}x)")
        if ratio < 1.0 - args.threshold:
            warn(f"perf regression, {line}")
            regressed = True
        else:
            print(f"ok: {line}")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
